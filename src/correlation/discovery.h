#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "correlation/features.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/mlp.h"

namespace glint::correlation {

/// Thread-safe memo table for pairwise correlation verdicts, keyed by the
/// (src, dst) rule *content* hashes (rules::RuleContentHash). The ensemble
/// prediction is a pure function of the two rule texts, so unchanged rules
/// are never re-scored: one entry serves every deployment session that
/// contains the same pair. Callers own the cache (typically one per
/// TrainedDetector) so cold-path measurements can opt out of memoization.
class CorrelationCache {
 public:
  std::optional<bool> Lookup(uint64_t src_hash, uint64_t dst_hash) const;
  void Insert(uint64_t src_hash, uint64_t dst_hash, bool correlated);

  size_t size() const;
  /// Monotonic hit/miss counters (bench visibility).
  size_t hits() const;
  size_t misses() const;

 private:
  struct Key {
    uint64_t src = 0;
    uint64_t dst = 0;
    bool operator==(const Key& o) const {
      return src == o.src && dst == o.dst;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Asymmetric mix so (a, b) and (b, a) land in different buckets.
      uint64_t h = k.src * 0x9e3779b97f4a7c15ULL;
      h ^= k.dst + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, bool, KeyHash> map_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

/// The learned rule-correlation discoverer of Sec. 4.1: an ensemble of MLP,
/// RandomForest and KNN (the paper's three chosen predictors) trained on
/// Algorithm-1 features. Pair label = majority vote (the paper's manual
/// review of disagreements is approximated by the vote).
class CorrelationDiscovery {
 public:
  explicit CorrelationDiscovery(const nlp::EmbeddingModel* model)
      : extractor_(model) {}

  /// Trains the ensemble on a labeled pair dataset.
  void Train(const ml::Dataset& pairs);

  /// Predicts whether src's action can trigger dst. When `cache` is given,
  /// the verdict is memoized by rule content hash (ensemble inference runs
  /// only on the first encounter of a pair).
  bool Correlated(const rules::Rule& src, const rules::Rule& dst,
                  CorrelationCache* cache = nullptr) const;

  /// Majority-vote probability in {0, 1/3, 2/3, 1}.
  double VoteShare(const rules::Rule& src, const rules::Rule& dst) const;

  const FeatureExtractor& extractor() const { return extractor_; }

  /// True after Train().
  bool trained() const { return trained_; }

 private:
  FeatureExtractor extractor_;
  ml::Mlp mlp_;
  ml::RandomForest forest_;
  ml::Knn knn_;
  bool trained_ = false;
};

}  // namespace glint::correlation
