#include "ml/kfold.h"

#include "util/status.h"

namespace glint::ml {

std::vector<Fold> KFoldSplit(size_t n, int k, Rng* rng) {
  GLINT_CHECK(k >= 2);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  rng->Shuffle(&idx);

  std::vector<Fold> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    folds[i % static_cast<size_t>(k)].test.push_back(idx[i]);
  }
  for (int f = 0; f < k; ++f) {
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      auto& tr = folds[static_cast<size_t>(f)].train;
      const auto& te = folds[static_cast<size_t>(g)].test;
      tr.insert(tr.end(), te.begin(), te.end());
    }
  }
  return folds;
}

std::vector<Metrics> CrossValidate(
    const Dataset& data, int k,
    const std::function<std::unique_ptr<Classifier>()>& factory, Rng* rng) {
  auto folds = KFoldSplit(data.size(), k, rng);
  std::vector<Metrics> out;
  out.reserve(folds.size());
  for (const auto& fold : folds) {
    Dataset train = data.Select(fold.train);
    Dataset test = data.Select(fold.test);
    auto clf = factory();
    clf->Fit(train, BalancedClassWeights(train.y, train.NumClasses()));
    out.push_back(BinaryMetrics(test.y, clf->PredictBatch(test.x)));
  }
  return out;
}

size_t GridSearch(
    const Dataset& data, int k,
    const std::vector<std::function<std::unique_ptr<Classifier>()>>& factories,
    Rng* rng) {
  GLINT_CHECK(!factories.empty());
  size_t best = 0;
  double best_f1 = -1;
  for (size_t i = 0; i < factories.size(); ++i) {
    Rng fold_rng = rng->Fork();
    auto metrics = CrossValidate(data, k, factories[i], &fold_rng);
    double mean_f1 = 0;
    for (const auto& m : metrics) mean_f1 += m.f1;
    mean_f1 /= static_cast<double>(metrics.size());
    if (mean_f1 > best_f1) {
      best_f1 = mean_f1;
      best = i;
    }
  }
  return best;
}

}  // namespace glint::ml
