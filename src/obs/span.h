#pragma once

#include <cstdint>
#include <vector>

#include "obs/registry.h"

namespace glint::obs {

/// One completed span in the trace ring. `stage` must be a string literal
/// (spans never copy it).
struct TraceEvent {
  const char* stage = nullptr;
  uint64_t start_ns = 0;  ///< steady-clock, process-relative
  uint64_t dur_ns = 0;
  uint32_t thread = 0;  ///< obs thread ordinal (not an OS tid)
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
uint64_t NowNs();

/// Capacity of each per-thread trace ring; older spans are overwritten, so
/// tracing memory is bounded at (threads x kTraceRingCapacity) events.
constexpr size_t kTraceRingCapacity = 1024;

/// Merged view of every thread's trace ring, ordered by start time (ties
/// broken by thread ordinal, so the merge is deterministic for a fixed set
/// of recorded spans). Rings keep recording while this runs.
std::vector<TraceEvent> CollectTrace();

/// Drops all recorded spans (benches/tests isolating a measurement window).
void ClearTrace();

/// RAII wall-time recorder: measures the enclosing scope and feeds the
/// histogram on destruction. With observability disabled the constructor is
/// a single branch — no clock read, no record.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) {
    if (Enabled() && h != nullptr) {
      hist_ = h;
      start_ns_ = NowNs();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(double(NowNs() - start_ns_) * 1e-6);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
};

/// ScopedTimer that additionally appends a stage-tagged TraceEvent to the
/// calling thread's bounded ring. Use for pipeline *stages* (ms-scale); use
/// bare ScopedTimer (or counters) for per-element hot loops.
class Span {
 public:
  /// `stage` must be a string literal; `h` may be null (trace-only span).
  explicit Span(const char* stage, Histogram* h = nullptr) {
    if (Enabled()) {
      stage_ = stage;
      hist_ = h;
      start_ns_ = NowNs();
    }
  }
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* stage_ = nullptr;
  Histogram* hist_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace glint::obs
