#include "ml/linear_svc.h"

#include <cmath>

namespace glint::ml {

void LinearSvc::Fit(const Dataset& data,
                    const std::vector<double>& class_weights) {
  GLINT_CHECK(data.size() > 0);
  scaler_.Fit(data.x);
  std::vector<FloatVec> xs = data.x;
  scaler_.TransformInPlace(&xs);

  const size_t dim = xs[0].size();
  w_.assign(dim, 0.f);
  b_ = 0;
  Rng rng(params_.seed);
  const double lambda = 1.0 / (params_.c * static_cast<double>(xs.size()));

  std::vector<size_t> order(xs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double t = 1;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      const double eta = params_.lr / (1.0 + params_.lr * lambda * t);
      t += 1;
      const double y = data.y[i] == 1 ? 1.0 : -1.0;
      const double cw =
          class_weights.empty() ? 1.0
                                : class_weights[static_cast<size_t>(data.y[i])];
      double margin = b_;
      for (size_t d = 0; d < dim; ++d) margin += double(w_[d]) * xs[i][d];
      margin *= y;
      // L2 shrinkage.
      const float shrink = static_cast<float>(1.0 - eta * lambda);
      for (auto& wd : w_) wd *= shrink;
      if (margin < 1.0) {
        const float step = static_cast<float>(eta * cw * y);
        for (size_t d = 0; d < dim; ++d) w_[d] += step * xs[i][d];
        b_ += eta * cw * y;
      }
    }
  }
}

double LinearSvc::Decision(const FloatVec& x) const {
  FloatVec xs = scaler_.Transform(x);
  double v = b_;
  for (size_t d = 0; d < xs.size(); ++d) v += double(w_[d]) * xs[d];
  return v;
}

int LinearSvc::Predict(const FloatVec& x) const {
  return Decision(x) >= 0 ? 1 : 0;
}

double LinearSvc::PredictProba(const FloatVec& x) const {
  // Platt-style squashing of the margin.
  return 1.0 / (1.0 + std::exp(-2.0 * Decision(x)));
}

}  // namespace glint::ml
