#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace glint {

/// Fixed-size thread pool with a chunked ParallelFor. No work stealing: a
/// shared atomic cursor hands out `grain`-sized index chunks, the calling
/// thread drains chunks alongside the workers, and the call returns only
/// when the whole range is done (rethrowing the first worker exception, if
/// any).
///
/// Determinism contract: ParallelFor partitions [begin, end) into disjoint
/// chunks, each processed by exactly one thread. Callers that write only to
/// per-index slots (and do all cross-index reduction afterwards, in index
/// order) produce bit-identical results for any thread count.
///
/// Nested calls: a ParallelFor issued from inside a pool worker runs inline
/// on that worker (serial). Parallelism is applied at the outermost level
/// only, which avoids both deadlock and oversubscription.
class ThreadPool {
 public:
  /// `threads` is the total concurrency (calling thread included), so a
  /// pool of 1 spawns no workers and ParallelFor runs inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(lo, hi) over disjoint chunks [lo, hi) covering [begin, end),
  /// with hi - lo <= grain. Blocks until every chunk has completed.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool, lazily sized from ConfiguredThreads().
  static ThreadPool& Global();

  /// Replaces the global pool with one of `threads` threads. Not safe to
  /// call while parallel work is in flight; intended for benches and tests
  /// that sweep thread counts.
  static void SetGlobalThreads(int threads);

  /// Thread count the global pool starts with: the GLINT_THREADS env var if
  /// set (>= 1; 1 forces serial execution for debugging), else
  /// std::thread::hardware_concurrency().
  static int ConfiguredThreads();

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Shorthand for ThreadPool::Global().ParallelFor(...).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace glint
