#include "ml/pca.h"

#include <cmath>

#include "util/rng.h"
#include "util/status.h"

namespace glint::ml {

void Pca::Fit(const std::vector<FloatVec>& xs) {
  GLINT_CHECK(!xs.empty());
  const size_t dim = xs[0].size();
  const size_t n = xs.size();

  mean_.assign(dim, 0.f);
  for (const auto& x : xs) AddInPlace(&mean_, x);
  ScaleInPlace(&mean_, 1.0f / static_cast<float>(n));

  // Centered data copy.
  std::vector<FloatVec> centered(xs);
  for (auto& x : centered) {
    for (size_t i = 0; i < dim; ++i) x[i] -= mean_[i];
  }

  Rng rng(params_.seed);
  components_.clear();
  variance_.clear();
  const int k = std::min<int>(params_.num_components, static_cast<int>(dim));

  for (int c = 0; c < k; ++c) {
    // Random init, orthogonal to found components.
    FloatVec v(dim);
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    for (int iter = 0; iter < params_.power_iters; ++iter) {
      // w = Cov * v computed as (1/n) X^T (X v) without forming Cov.
      std::vector<double> xv(n, 0.0);
      for (size_t i = 0; i < n; ++i) xv[i] = Dot(centered[i], v);
      FloatVec w(dim, 0.f);
      for (size_t i = 0; i < n; ++i) {
        const float s = static_cast<float>(xv[i]);
        for (size_t d = 0; d < dim; ++d) w[d] += s * centered[i][d];
      }
      ScaleInPlace(&w, 1.0f / static_cast<float>(n));
      // Deflate against previous components.
      for (const auto& prev : components_) {
        const double proj = Dot(w, prev);
        for (size_t d = 0; d < dim; ++d) {
          w[d] -= static_cast<float>(proj * prev[d]);
        }
      }
      const double norm = Norm(w);
      if (norm < 1e-12) break;
      ScaleInPlace(&w, static_cast<float>(1.0 / norm));
      v = std::move(w);
    }
    // Variance along the component.
    double var = 0;
    for (size_t i = 0; i < n; ++i) {
      const double proj = Dot(centered[i], v);
      var += proj * proj;
    }
    var /= static_cast<double>(n);
    components_.push_back(std::move(v));
    variance_.push_back(var);
  }
}

FloatVec Pca::Transform(const FloatVec& x) const {
  GLINT_CHECK(x.size() == mean_.size());
  FloatVec centered(x);
  for (size_t i = 0; i < centered.size(); ++i) centered[i] -= mean_[i];
  FloatVec out(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    out[c] = static_cast<float>(Dot(centered, components_[c]));
  }
  return out;
}

std::vector<FloatVec> Pca::TransformBatch(
    const std::vector<FloatVec>& xs) const {
  std::vector<FloatVec> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(Transform(x));
  return out;
}

}  // namespace glint::ml
