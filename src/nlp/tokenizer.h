#pragma once

#include <string>
#include <vector>

namespace glint::nlp {

/// A token with its surface form (lowercased) and character offset.
struct Token {
  std::string text;
  size_t offset = 0;
};

/// Tokenizes rule sentences: lowercases, splits on whitespace and
/// punctuation, keeps numbers ("85") and degree markers ("°f" -> "degrees"),
/// and merges known multi-word expressions ("turn on" -> "turn_on",
/// "living room" -> "living_room", "motion sensor" -> "motion_sensor") so
/// the lexicon can resolve them as single entries.
class Tokenizer {
 public:
  /// Tokenizes `sentence` into normalized tokens.
  static std::vector<Token> Tokenize(const std::string& sentence);

  /// Convenience: token texts only.
  static std::vector<std::string> Words(const std::string& sentence);
};

}  // namespace glint::nlp
