#!/usr/bin/env bash
# Tier-1 check: Release build, full test suite, throughput smoke bench, and
# a ThreadSanitizer pass over the thread pool.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# Smoke the throughput bench with a 2-thread pool (exercises the parallel
# build/train/inference paths end to end).
GLINT_THREADS=2 ./build/bench/bench_throughput --smoke

# Smoke the serving bench (cold full-rebuild vs warm incremental Inspect
# through a DeploymentSession; exits non-zero if warm != cold).
GLINT_THREADS=2 ./build/bench/bench_serving --smoke

# Observability gate: obs unit tests (bucket boundaries, quantiles vs an
# exact reference, registry collision aborts, snapshot-merge determinism),
# then the overhead bench — exits non-zero if telemetry costs >5% on the
# warm Inspect path or perturbs the verdicts.
./build/tests/obs_test
GLINT_THREADS=2 ./build/bench/bench_obs_overhead --smoke

# Data-race check: build the thread-pool and obs stress targets under TSAN
# and run both drivers.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLINT_TSAN=ON
cmake --build build-tsan -j"${JOBS}" --target threadpool_stress obs_stress
./build-tsan/tests/threadpool_stress
./build-tsan/tests/obs_stress

# Arena lifetime / aliasing check: the tape tests under ASan. Guards the
# bump-pointer arena (slot reuse after Reset, offset-based pools whose
# growth moves storage, scratch-matrix aliasing in MatMul's transposed-B
# kernel) against use-after-free and out-of-bounds regressions.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGLINT_ASAN=ON
cmake --build build-asan -j"${JOBS}" --target \
  gnn_tensor_test gnn_tape_reuse_test gnn_layers_test
./build-asan/tests/gnn_tensor_test
./build-asan/tests/gnn_tape_reuse_test
./build-asan/tests/gnn_layers_test

echo "check.sh: all stages passed"
