#pragma once

#include <string>
#include <vector>

namespace glint {

/// Lowercases ASCII characters in-place-free fashion.
std::string ToLower(const std::string& s);

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(const std::string& s, const std::string& delims);

/// Splits on whitespace.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Removes leading/trailing whitespace.
std::string Strip(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(const std::string& s, const std::string& suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace glint
