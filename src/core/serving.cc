#include "core/serving.h"

#include "util/thread_pool.h"

namespace glint::core {

ServingEngine::ServingEngine(const TrainedDetector* detector, Config config)
    : detector_(detector), config_(config) {
  GLINT_CHECK(detector_ != nullptr);
}

int ServingEngine::AddHome(const std::vector<rules::Rule>& deployed) {
  auto session =
      std::make_unique<DeploymentSession>(detector_, config_.session);
  for (const auto& r : deployed) session->AddRule(r);
  sessions_.push_back(std::move(session));
  return static_cast<int>(sessions_.size()) - 1;
}

DeploymentSession& ServingEngine::home(int h) {
  GLINT_CHECK(h >= 0 && h < static_cast<int>(sessions_.size()));
  return *sessions_[static_cast<size_t>(h)];
}

const DeploymentSession& ServingEngine::home(int h) const {
  GLINT_CHECK(h >= 0 && h < static_cast<int>(sessions_.size()));
  return *sessions_[static_cast<size_t>(h)];
}

void ServingEngine::OnEvent(int h, const graph::Event& e) {
  home(h).OnEvent(e);
}

std::vector<ThreatWarning> ServingEngine::InspectAll(double now_hours) {
  std::vector<ThreatWarning> out(sessions_.size());
  // One home per chunk: each session is touched by exactly one thread, and
  // results land in per-home slots (bit-identical for any thread count).
  ParallelFor(0, static_cast<int64_t>(sessions_.size()), 1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t h = lo; h < hi; ++h) {
                  out[static_cast<size_t>(h)] =
                      sessions_[static_cast<size_t>(h)]->Inspect(now_hours);
                }
              });
  return out;
}

size_t ServingEngine::total_rules() const {
  size_t n = 0;
  for (const auto& s : sessions_) n += static_cast<size_t>(s->num_rules());
  return n;
}

}  // namespace glint::core
