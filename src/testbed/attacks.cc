#include "testbed/attacks.h"

namespace glint::testbed {

using rules::Command;
using rules::DeviceType;
using rules::Location;

const char* AttackName(AttackType a) {
  switch (a) {
    case AttackType::kNone: return "none";
    case AttackType::kFakeCommand: return "fake_command";
    case AttackType::kStealthyCommand: return "stealthy_command";
    case AttackType::kFakeEvent: return "fake_event";
    case AttackType::kEventLoss: return "event_loss";
    case AttackType::kCommandFailure: return "command_failure";
  }
  return "?";
}

void ApplyAttack(AttackType type, SmartHome* home, Rng* rng) {
  switch (type) {
    case AttackType::kNone:
      return;
    case AttackType::kFakeCommand: {
      // "Manually turning off lights during normal operation" — or other
      // unauthorized commands on actuators.
      static const std::pair<DeviceType, Command> kCommands[] = {
          {DeviceType::kLight, Command::kOff},
          {DeviceType::kLock, Command::kUnlock},
          {DeviceType::kWindow, Command::kOpen},
          {DeviceType::kAc, Command::kOff},
      };
      const auto& [dev, cmd] = kCommands[rng->Below(4)];
      home->InjectCommand(dev, Location::kAny, cmd);
      return;
    }
    case AttackType::kStealthyCommand: {
      // "Manually starting a robot vacuum to trigger motion sensors."
      home->InjectCommand(DeviceType::kVacuum, Location::kLivingRoom,
                          Command::kStartClean);
      return;
    }
    case AttackType::kFakeEvent: {
      // Forged sensor report with no physical cause.
      graph::Event e;
      if (rng->Chance(0.5)) {
        e.device = DeviceType::kSmokeAlarm;
        e.state = "beeping";
      } else {
        e.device = DeviceType::kMotionSensor;
        e.location = Location::kHallway;
        e.state = "active";
      }
      home->InjectEvent(e);
      return;
    }
    case AttackType::kEventLoss: {
      // Drop a slice of recent events (jammed radio / dropped reports).
      auto* log = home->mutable_log();
      auto events = log->events();
      if (events.size() < 6) return;
      const size_t start = events.size() - 1 - rng->Below(4);
      const size_t count = 1 + rng->Below(3);
      graph::EventLog rebuilt;
      for (size_t i = 0; i < events.size(); ++i) {
        if (i >= start - count && i < start) continue;
        rebuilt.Append(events[i]);
      }
      *log = rebuilt;
      return;
    }
    case AttackType::kCommandFailure:
      // Handled via SmartHome::Config::command_failure_rate; inject one
      // command that will race the elevated failure rate.
      home->InjectCommand(DeviceType::kLight, Location::kLivingRoom,
                          Command::kOn);
      return;
  }
}

}  // namespace glint::testbed
