#pragma once

#include <string>
#include <vector>

#include "nlp/lexicon.h"
#include "nlp/tokenizer.h"

namespace glint::nlp {

/// A token annotated with its part of speech.
struct TaggedToken {
  std::string text;
  Pos pos = Pos::kOther;
};

/// Dictionary + rule POS tagger (the spaCy substitute feeding Algorithm 1).
///
/// Strategy: (1) lexicon lookup; (2) morphological suffix rules for unknown
/// words (-ing/-ed -> VERB, -ly -> ADV, digits -> NUM); (3) contextual
/// repair (a word after a determiner is a noun; a clause-initial unknown in
/// imperative position is a verb).
class PosTagger {
 public:
  /// Tags a tokenized sentence.
  static std::vector<TaggedToken> Tag(const std::vector<Token>& tokens);

  /// Tokenizes then tags.
  static std::vector<TaggedToken> TagSentence(const std::string& sentence);
};

/// Splits a tagged sentence into (nouns, verbs) as line 2-3 of Algorithm 1,
/// discarding named entities, stop words, determiners, etc.
struct NounsVerbs {
  std::vector<std::string> nouns;
  std::vector<std::string> verbs;
};
NounsVerbs ExtractNounsVerbs(const std::vector<TaggedToken>& tagged);

}  // namespace glint::nlp
