#include <gtest/gtest.h>

#include "nlp/tokenizer.h"

namespace glint::nlp {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  auto words = Tokenizer::Words("Close the Window");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "close");
  EXPECT_EQ(words[1], "the");
  EXPECT_EQ(words[2], "window");
}

TEST(Tokenizer, StripsPunctuation) {
  auto words = Tokenizer::Words("If smoke, then open!");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words.back(), "open");
}

TEST(Tokenizer, MergesTurnOnBigram) {
  auto words = Tokenizer::Words("turn on the light");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "turn_on");
}

TEST(Tokenizer, MergesDeviceBigrams) {
  EXPECT_EQ(Tokenizer::Words("the motion sensor fired")[1], "motion_sensor");
  EXPECT_EQ(Tokenizer::Words("air conditioner is on")[0], "ac");
  EXPECT_EQ(Tokenizer::Words("smoke detector beeps")[0], "smoke_alarm");
  EXPECT_EQ(Tokenizer::Words("robot vacuum starts")[0], "vacuum");
  EXPECT_EQ(Tokenizer::Words("living room light")[0], "living_room");
}

TEST(Tokenizer, DegreeSignNormalized) {
  auto words = Tokenizer::Words("above 85 °F today");
  ASSERT_GE(words.size(), 3u);
  EXPECT_EQ(words[0], "above");
  EXPECT_EQ(words[1], "85");
  EXPECT_EQ(words[2], "degrees");
}

TEST(Tokenizer, KeepsNumbers) {
  auto words = Tokenizer::Words("between 65 and 80");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[1], "65");
  EXPECT_EQ(words[3], "80");
}

TEST(Tokenizer, OffsetsPointIntoSentence) {
  const std::string s = "open the door";
  auto tokens = Tokenizer::Tokenize(s);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(s.substr(tokens[2].offset, 4), "door");
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(Tokenizer::Words("").empty());
  EXPECT_TRUE(Tokenizer::Words("  ,,! ").empty());
}

TEST(Tokenizer, HyphenSplits) {
  auto words = Tokenizer::Words("living-room light");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "living_room");
  EXPECT_EQ(words[1], "light");
}

TEST(Tokenizer, ConsecutiveBigramsBothMerge) {
  auto words = Tokenizer::Words("turn on living room lamp");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "turn_on");
  EXPECT_EQ(words[1], "living_room");
  EXPECT_EQ(words[2], "lamp");
}

}  // namespace
}  // namespace glint::nlp
