#include "core/serving.h"

#include <string>
#include <utility>

#include "graph/event_log.h"
#include "obs/obs.h"
#include "rules/rule_io.h"
#include "util/binio.h"
#include "util/thread_pool.h"

namespace glint::core {

ServingEngine::ServingEngine(const TrainedDetector* detector)
    : ServingEngine(detector, Config()) {}

ServingEngine::ServingEngine(const TrainedDetector* detector, Config config)
    : detector_(detector), config_(config) {
  GLINT_CHECK(detector_ != nullptr);
}

std::unique_ptr<DeploymentSession> ServingEngine::MakeSession() const {
  return std::make_unique<DeploymentSession>(detector_, config_.session);
}

// ---- Durability --------------------------------------------------------

Status ServingEngine::Recover(const std::string& dir) {
  GLINT_OBS_SPAN(span, "glint.recovery.recover_ms");
  GLINT_CHECK(sessions_.empty());  // recovery targets a fresh engine
  GLINT_CHECK(journal_ == nullptr);
  auto journal = std::make_unique<Journal>(
      dir, Journal::Config{config_.sync_each_append});
  Journal::RecoveryInfo info;
  Status st = journal->Recover(
      [this](const std::vector<char>& payload) {
        return ApplySnapshot(payload);
      },
      [this](uint64_t seq, const std::vector<char>& payload) {
        Status apply_st = ApplyRecord(payload);
        if (apply_st.ok()) seq_ = seq;
        return apply_st;
      },
      &info);
  if (!st.ok()) {
    // Leave the engine non-durable and empty-ish state visible to the
    // caller; recovery failures are surfaced, never papered over.
    sessions_.clear();
    ids_.clear();
    index_.clear();
    seq_ = 0;
    return st;
  }
  if (info.snapshot_loaded && info.tail_records == 0) {
    seq_ = info.snapshot_seq;
  } else if (info.snapshot_loaded && seq_ < info.snapshot_seq) {
    seq_ = info.snapshot_seq;
  }
  recovery_info_ = info;
  journal_ = std::move(journal);
  ops_since_snapshot_ = info.tail_records;
  return Status::OK();
}

Status ServingEngine::Snapshot() {
  GLINT_CHECK(durable());
  GLINT_OBS_SPAN(span, "glint.recovery.snapshot_ms");
  GLINT_RETURN_IF_ERROR(journal_->WriteSnapshot(seq_, EncodeSnapshot()));
  ops_since_snapshot_ = 0;
  return Status::OK();
}

std::vector<char> ServingEngine::EncodeSnapshot() const {
  util::ByteWriter w;
  w.U32(static_cast<uint32_t>(sessions_.size()));
  for (size_t h = 0; h < sessions_.size(); ++h) {
    w.Str(ids_[h]);
    sessions_[h]->SerializeTo(&w);
  }
  return w.TakeBuffer();
}

Status ServingEngine::ApplySnapshot(const std::vector<char>& payload) {
  util::ByteReader r(payload);
  uint32_t homes = 0;
  if (!r.U32(&homes)) {
    return Status::InvalidArgument("snapshot: truncated home count");
  }
  for (uint32_t h = 0; h < homes; ++h) {
    HomeId id;
    if (!r.Str(&id)) {
      return Status::InvalidArgument("snapshot: truncated home id");
    }
    if (index_.count(id) != 0) {
      return Status::InvalidArgument("snapshot: duplicate home id '" + id +
                                     "'");
    }
    auto session = MakeSession();
    GLINT_RETURN_IF_ERROR(session->RestoreFrom(&r));
    RegisterHomeId(std::move(id));
    sessions_.push_back(std::move(session));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  return Status::OK();
}

Status ServingEngine::JournalAppend(const std::vector<char>& payload) {
  if (journal_ == nullptr) {
    ++seq_;
    return Status::OK();
  }
  GLINT_OBS_TIMER(timer, "glint.serving.wal_append_ms");
  GLINT_RETURN_IF_ERROR(journal_->Append(seq_ + 1, payload));
  ++seq_;
  ++ops_since_snapshot_;
  return Status::OK();
}

Status ServingEngine::MaybeAutoSnapshot() {
  if (journal_ == nullptr || config_.snapshot_every_ops == 0 ||
      ops_since_snapshot_ < config_.snapshot_every_ops) {
    return Status::OK();
  }
  return Snapshot();
}

Status ServingEngine::ApplyRecord(const std::vector<char>& payload) {
  util::ByteReader r(payload);
  uint8_t op = 0;
  if (!r.U8(&op)) return Status::InvalidArgument("WAL record: missing op");
  switch (op) {
    case kOpAddHome: {
      HomeId id;
      uint32_t n = 0;
      if (!r.Str(&id) || !r.U32(&n) || n > r.remaining()) {
        return Status::InvalidArgument("WAL AddHome: truncated record");
      }
      if (index_.count(id) != 0) {
        return Status::InvalidArgument("WAL AddHome: duplicate home id '" +
                                       id + "'");
      }
      auto session = MakeSession();
      for (uint32_t i = 0; i < n; ++i) {
        rules::Rule rule;
        if (!rules::ReadRule(&r, &rule)) {
          return Status::InvalidArgument("WAL AddHome: truncated rule");
        }
        session->AddRule(rule);
      }
      RegisterHomeId(std::move(id));
      sessions_.push_back(std::move(session));
      break;
    }
    case kOpAddRule: {
      uint32_t h = 0;
      rules::Rule rule;
      if (!r.U32(&h) || !rules::ReadRule(&r, &rule)) {
        return Status::InvalidArgument("WAL AddRule: truncated record");
      }
      if (h >= sessions_.size()) {
        return Status::InvalidArgument("WAL AddRule: bad home index");
      }
      sessions_[h]->AddRule(rule);
      break;
    }
    case kOpRemoveRule: {
      uint32_t h = 0;
      int32_t rule_id = 0;
      if (!r.U32(&h) || !r.I32(&rule_id)) {
        return Status::InvalidArgument("WAL RemoveRule: truncated record");
      }
      if (h >= sessions_.size()) {
        return Status::InvalidArgument("WAL RemoveRule: bad home index");
      }
      sessions_[h]->RemoveRule(rule_id);
      break;
    }
    case kOpEvent: {
      uint32_t h = 0;
      graph::Event e;
      if (!r.U32(&h) || !graph::ReadEvent(&r, &e)) {
        return Status::InvalidArgument("WAL Event: truncated record");
      }
      if (h >= sessions_.size()) {
        return Status::InvalidArgument("WAL Event: bad home index");
      }
      sessions_[h]->OnEvent(e);
      break;
    }
    default:
      return Status::InvalidArgument("WAL record: unknown op " +
                                     std::to_string(op));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("WAL record: trailing bytes");
  }
  return Status::OK();
}

// ---- Deployment mutations ----------------------------------------------

void ServingEngine::RegisterHomeId(HomeId id) {
  index_.emplace(id, static_cast<int>(sessions_.size()));
  ids_.push_back(std::move(id));
}

Result<int> ServingEngine::RequireHome(const HomeId& id) const {
  const int h = ResolveHome(id);
  if (h < 0) {
    GLINT_OBS_COUNT("glint.serving.bad_home_id", 1);
    return Status::NotFound("no home with id '" + id + "'");
  }
  return h;
}

Result<int> ServingEngine::TryAddHome(
    const HomeId& id, const std::vector<rules::Rule>& deployed) {
  if (id.empty()) {
    return Status::InvalidArgument("home id must be non-empty");
  }
  if (index_.count(id) != 0) {
    return Status::InvalidArgument("home id '" + id + "' already exists");
  }
  if (journal_ != nullptr) {
    util::ByteWriter w;
    w.U8(kOpAddHome);
    w.Str(id);
    w.U32(static_cast<uint32_t>(deployed.size()));
    for (const auto& rule : deployed) rules::WriteRule(&w, rule);
    GLINT_RETURN_IF_ERROR(JournalAppend(w.buffer()));
  } else {
    ++seq_;
  }
  auto session = MakeSession();
  for (const auto& rule : deployed) session->AddRule(rule);
  RegisterHomeId(id);
  sessions_.push_back(std::move(session));
  GLINT_RETURN_IF_ERROR(MaybeAutoSnapshot());
  return static_cast<int>(sessions_.size()) - 1;
}

Result<int> ServingEngine::TryAddHome(
    const std::vector<rules::Rule>& deployed) {
  return TryAddHome("#" + std::to_string(sessions_.size()), deployed);
}

int ServingEngine::AddHome(const std::vector<rules::Rule>& deployed) {
  Result<int> h = TryAddHome(deployed);
  if (!h.ok()) {
    std::fprintf(stderr, "ServingEngine::AddHome: %s\n",
                 h.status().ToString().c_str());
  }
  GLINT_CHECK(h.ok());
  return h.value();
}

Status ServingEngine::TryAddRule(int h, const rules::Rule& rule) {
  DeploymentSession* session = FindHome(h);
  if (session == nullptr) {
    GLINT_OBS_COUNT("glint.serving.bad_home_index", 1);
    return Status::InvalidArgument(
        "no home with index " + std::to_string(h) + " (have " +
        std::to_string(sessions_.size()) + ")");
  }
  if (journal_ != nullptr) {
    util::ByteWriter w;
    w.U8(kOpAddRule);
    w.U32(static_cast<uint32_t>(h));
    rules::WriteRule(&w, rule);
    GLINT_RETURN_IF_ERROR(JournalAppend(w.buffer()));
  } else {
    ++seq_;
  }
  session->AddRule(rule);
  return MaybeAutoSnapshot();
}

Status ServingEngine::TryRemoveRule(int h, int rule_id, bool* removed) {
  DeploymentSession* session = FindHome(h);
  if (session == nullptr) {
    GLINT_OBS_COUNT("glint.serving.bad_home_index", 1);
    return Status::InvalidArgument(
        "no home with index " + std::to_string(h) + " (have " +
        std::to_string(sessions_.size()) + ")");
  }
  // Probe first so a no-op removal does not pollute the WAL. CurrentRules
  // is node-ordered, so id lookup mirrors RemoveRule's scan.
  bool present = false;
  for (const auto& rule : session->CurrentRules()) {
    if (rule.id == rule_id) {
      present = true;
      break;
    }
  }
  if (removed != nullptr) *removed = present;
  if (!present) return Status::OK();
  if (journal_ != nullptr) {
    util::ByteWriter w;
    w.U8(kOpRemoveRule);
    w.U32(static_cast<uint32_t>(h));
    w.I32(rule_id);
    GLINT_RETURN_IF_ERROR(JournalAppend(w.buffer()));
  } else {
    ++seq_;
  }
  session->RemoveRule(rule_id);
  return MaybeAutoSnapshot();
}

void ServingEngine::OnEvent(int h, const graph::Event& e) {
  GLINT_CHECK(has_home(h));
  Status st = TryOnEvent(h, e);
  if (!st.ok()) {
    std::fprintf(stderr, "ServingEngine::OnEvent: %s\n",
                 st.ToString().c_str());
  }
  GLINT_CHECK(st.ok());
}

Status ServingEngine::TryOnEvent(int h, const graph::Event& e) {
  DeploymentSession* session = FindHome(h);
  if (session == nullptr) {
    GLINT_OBS_COUNT("glint.serving.bad_home_index", 1);
    return Status::InvalidArgument(
        "no home with index " + std::to_string(h) + " (have " +
        std::to_string(sessions_.size()) + ")");
  }
  if (journal_ != nullptr) {
    util::ByteWriter w;
    w.U8(kOpEvent);
    w.U32(static_cast<uint32_t>(h));
    graph::WriteEvent(&w, e);
    GLINT_RETURN_IF_ERROR(JournalAppend(w.buffer()));
  } else {
    ++seq_;
  }
  GLINT_OBS_COUNT("glint.serving.events", 1);
  session->OnEvent(e);
  return MaybeAutoSnapshot();
}

// ---- Id-addressed twins -------------------------------------------------

Status ServingEngine::TryAddRule(const HomeId& id, const rules::Rule& rule) {
  Result<int> h = RequireHome(id);
  GLINT_RETURN_IF_ERROR(h.status());
  return TryAddRule(h.value(), rule);
}

Status ServingEngine::TryRemoveRule(const HomeId& id, int rule_id,
                                    bool* removed) {
  Result<int> h = RequireHome(id);
  GLINT_RETURN_IF_ERROR(h.status());
  return TryRemoveRule(h.value(), rule_id, removed);
}

Status ServingEngine::TryOnEvent(const HomeId& id, const graph::Event& e) {
  Result<int> h = RequireHome(id);
  GLINT_RETURN_IF_ERROR(h.status());
  return TryOnEvent(h.value(), e);
}

Result<ThreatWarning> ServingEngine::TryInspect(const HomeId& id,
                                                double now_hours) {
  Result<int> h = RequireHome(id);
  if (!h.ok()) return h.status();
  return TryInspect(h.value(), now_hours);
}

// ---- Lookups & inspection ----------------------------------------------

int ServingEngine::ResolveHome(const HomeId& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : it->second;
}

const HomeId& ServingEngine::home_id(int h) const {
  GLINT_CHECK(has_home(h));
  return ids_[static_cast<size_t>(h)];
}

DeploymentSession& ServingEngine::home(int h) {
  // Handing out a mutable session on a durable engine would let callers
  // mutate state the WAL never sees; reads go through home_view(),
  // mutations through the journaled Try* API.
  GLINT_CHECK(!durable());
  GLINT_CHECK(has_home(h));
  return *sessions_[static_cast<size_t>(h)];
}

const DeploymentSession& ServingEngine::home_view(int h) const {
  GLINT_CHECK(has_home(h));
  return *sessions_[static_cast<size_t>(h)];
}

const DeploymentSession& ServingEngine::home(int h) const {
  GLINT_CHECK(has_home(h));
  return *sessions_[static_cast<size_t>(h)];
}

DeploymentSession* ServingEngine::FindHome(int h) {
  return has_home(h) ? sessions_[static_cast<size_t>(h)].get() : nullptr;
}

const DeploymentSession* ServingEngine::FindHome(int h) const {
  return has_home(h) ? sessions_[static_cast<size_t>(h)].get() : nullptr;
}

std::vector<ThreatWarning> ServingEngine::InspectAll(double now_hours) {
  GLINT_OBS_SPAN(span, "glint.serving.inspect_all_ms");
  std::vector<ThreatWarning> out(sessions_.size());
  // One home per chunk: each session is touched by exactly one thread, and
  // results land in per-home slots (bit-identical for any thread count).
  ParallelFor(0, static_cast<int64_t>(sessions_.size()), 1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t h = lo; h < hi; ++h) {
                  out[static_cast<size_t>(h)] =
                      sessions_[static_cast<size_t>(h)]->Inspect(now_hours);
                }
              });
  return out;
}

std::vector<ThreatWarning> ServingEngine::InspectAllBatched(double now_hours,
                                                            int max_batch) {
  GLINT_OBS_SPAN(span, "glint.serving.inspect_all_ms");
  GLINT_CHECK(max_batch >= 1);
  const size_t n = sessions_.size();
  std::vector<ThreatWarning> out(n);
  std::vector<DeploymentSession::Pending> pending(n);
  // Stage 1 (parallel, one home per chunk): cache lookups + materialize +
  // tensorize. Each session is touched by exactly one thread.
  ParallelFor(0, static_cast<int64_t>(n), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t h = lo; h < hi; ++h) {
      pending[static_cast<size_t>(h)] =
          sessions_[static_cast<size_t>(h)]->BeginInspect(now_hours);
    }
  });
  // Stage 2 (serial, home order): pack the verdict-cache misses into
  // super-graphs and analyze each with one batched forward. Serial
  // assembly keeps batch composition — and therefore every float — a pure
  // function of the fleet state, independent of thread count.
  std::vector<size_t> todo;
  for (size_t h = 0; h < n; ++h) {
    if (pending[h].cached) {
      out[h] = pending[h].warning;
    } else {
      todo.push_back(h);
    }
  }
  std::vector<const gnn::GnnGraph*> ggs;
  std::vector<const graph::InteractionGraph*> gs;
  std::vector<size_t> members;
  for (size_t i = 0; i < todo.size();) {
    ggs.clear();
    gs.clear();
    members.clear();
    while (i < todo.size() && members.size() < static_cast<size_t>(max_batch)) {
      const size_t h = todo[i++];
      if (pending[h].gg->num_nodes == 0) {
        // Empty graphs cannot join a block-diagonal batch (segments must be
        // non-empty); route them through the sequential path unchanged.
        out[h] = sessions_[h]->FinishInspect(
            detector_->Analyze(*pending[h].gg, pending[h].graph));
        continue;
      }
      ggs.push_back(pending[h].gg);
      gs.push_back(&pending[h].graph);
      members.push_back(h);
    }
    if (members.empty()) continue;
    GLINT_OBS_OBSERVE("glint.batch.size", static_cast<double>(members.size()));
    std::vector<ThreatWarning> warnings = detector_->AnalyzeBatch(ggs, gs);
    for (size_t k = 0; k < members.size(); ++k) {
      out[members[k]] = sessions_[members[k]]->FinishInspect(warnings[k]);
    }
  }
  return out;
}

Result<ThreatWarning> ServingEngine::TryInspect(int h, double now_hours) {
  DeploymentSession* session = FindHome(h);
  if (session == nullptr) {
    GLINT_OBS_COUNT("glint.serving.bad_home_index", 1);
    return Status::InvalidArgument(
        "no home with index " + std::to_string(h) + " (have " +
        std::to_string(sessions_.size()) + ")");
  }
  return session->TryInspect(now_hours);
}

size_t ServingEngine::total_rules() const {
  size_t n = 0;
  for (const auto& s : sessions_) n += static_cast<size_t>(s->num_rules());
  return n;
}

DeploymentSession::CacheStats ServingEngine::AggregateStats() const {
  DeploymentSession::CacheStats total;
  for (const auto& s : sessions_) total += s->Stats();
  return total;
}

}  // namespace glint::core
