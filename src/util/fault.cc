#include "util/fault.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace glint::fault {

std::atomic<bool> Registry::armed_{false};

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Registry() {
  const char* spec = std::getenv("GLINT_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    Status st = ArmFromSpec(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "GLINT_FAULTS: %s\n", st.ToString().c_str());
    }
  }
}

bool Registry::RegisterPoint(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.try_emplace(name);
  return true;
}

std::vector<std::string> Registry::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) out.push_back(name);
  return out;
}

void Registry::Arm(const std::string& point, Mode mode, int nth,
                   int delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[point];
  if (!st.armed) ++armed_count_;
  st.armed = true;
  st.mode = mode;
  st.trigger_at = st.hits + static_cast<uint64_t>(nth < 1 ? 1 : nth);
  st.delay_ms = delay_ms;
  armed_.store(armed_count_ > 0, std::memory_order_relaxed);
}

void Registry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end() && it->second.armed) {
    it->second.armed = false;
    --armed_count_;
  }
  armed_.store(armed_count_ > 0, std::memory_order_relaxed);
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) {
    st.armed = false;
    st.hits = 0;
  }
  armed_count_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

Status Registry::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry needs point=mode: '" +
                                     entry + "'");
    }
    std::string point = entry.substr(0, eq);
    std::string mode_str = entry.substr(eq + 1);
    int nth = 1;
    const size_t colon = point.rfind(':');
    if (colon != std::string::npos) {
      nth = std::atoi(point.c_str() + colon + 1);
      if (nth < 1) {
        return Status::InvalidArgument("bad hit count in '" + entry + "'");
      }
      point.resize(colon);
    }
    Mode mode;
    int delay_ms = 0;
    if (mode_str == "fail") {
      mode = Mode::kFail;
    } else if (mode_str == "crash") {
      mode = Mode::kCrash;
    } else if (mode_str.rfind("delay:", 0) == 0) {
      mode = Mode::kDelay;
      delay_ms = std::atoi(mode_str.c_str() + 6);
      if (delay_ms < 0) delay_ms = 0;
    } else {
      return Status::InvalidArgument(
          "unknown fault mode '" + mode_str +
          "' (want fail, crash, or delay:MS) in '" + entry + "'");
    }
    Arm(point, mode, nth, delay_ms);
  }
  return Status::OK();
}

Status Registry::Hit(const char* point) {
  Mode mode;
  int delay_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& st = points_[point];
    ++st.hits;
    if (!st.armed || st.hits != st.trigger_at) return Status::OK();
    // One-shot: the point acts once, then passes through again.
    st.armed = false;
    --armed_count_;
    armed_.store(armed_count_ > 0, std::memory_order_relaxed);
    mode = st.mode;
    delay_ms = st.delay_ms;
  }
  switch (mode) {
    case Mode::kFail:
      return Status::IOError(std::string("fault injected at ") + point);
    case Mode::kCrash:
      // Hard kill: no stdio flush, no atexit, no destructors — buffered
      // but unflushed WAL bytes are lost exactly as in a real crash.
      _exit(kCrashExitCode);
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
  }
  return Status::OK();
}

uint64_t Registry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace glint::fault
