#pragma once

#include <vector>

#include "util/rng.h"
#include "util/vecmath.h"

namespace glint::ml {

/// Isolation forest anomaly detector (Liu et al. 2008) — a Fig. 11
/// baseline. Shorter average isolation path = more anomalous.
class IsolationForest {
 public:
  struct Params {
    int num_trees = 100;
    int subsample = 256;
    /// Score threshold above which a point is an anomaly (paper default 0.5;
    /// sklearn tunes by contamination — use FitThreshold for that).
    double threshold = 0.55;
    uint64_t seed = 37;
  };

  IsolationForest() : IsolationForest(Params()) {}
  explicit IsolationForest(Params params) : params_(params) {}

  /// Builds the forest on (mostly normal) data.
  void Fit(const std::vector<FloatVec>& xs);

  /// Anomaly score in (0, 1); higher = more anomalous.
  double Score(const FloatVec& x) const;

  /// -1 for anomalies, +1 for normal (sklearn convention).
  int Predict(const FloatVec& x) const;

  /// Calibrates the threshold so that `contamination` of the training data
  /// is flagged anomalous.
  void FitThreshold(const std::vector<FloatVec>& xs, double contamination);

 private:
  struct Node {
    int feature = -1;
    float threshold = 0;
    int left = -1, right = -1;
    int size = 0;  ///< leaf: number of samples that reached it
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int BuildTree(Tree* tree, std::vector<const FloatVec*> points, int depth,
                int max_depth, Rng* rng);
  double PathLength(const Tree& tree, const FloatVec& x) const;

  Params params_;
  std::vector<Tree> trees_;
  double avg_path_norm_ = 1;
};

}  // namespace glint::ml
