#pragma once

// Binary wire protocol for fleet event ingestion — the network-facing
// system boundary. Length-prefixed, CRC32C-framed (the WAL's framing
// discipline applied to a socket stream). Integers are little-endian —
// by construction, not conversion: the codec writes host memory order and
// util/binio.h static_asserts a little-endian host, so a big-endian port
// fails at compile time rather than emitting frames peers cannot parse:
//
//   frame:   u32 payload_len | u32 crc32c(payload) | payload
//   payload: u8 MsgType | message body (rules/events reuse the rule_io /
//            event_log codecs — one serialization per type, everywhere)
//
// Requests (client → server):
//   kPing                          liveness probe
//   kAddHome    Str id | u32 n | n rules
//   kAddRule    Str id | rule
//   kRemoveRule Str id | i32 rule_id
//   kEvent      Str id | event
//   kInspect    Str id | f64 now_hours
//   kStats                         fleet aggregate counters
//
// Replies (server → client):
//   kPong
//   kAck        i32 status_code | Str message      (mutations: accepted =
//               enqueued on the shard bus, not yet applied — see server.h)
//   kWarning    i32 status_code | Str message | u8 threat | u8 drifting |
//               f64 confidence | Str rendered      (fields valid when code==0)
//   kStatsReply u64 homes | u64 rules | u64 events | u64 inspects |
//               u64 bus_rejected | u64 bus_apply_errors
//
// Robustness contract (tests/wire_test.cc): no byte sequence a peer can
// send — truncated header, truncated payload, flipped CRC bits, an
// oversized length prefix, garbage message bodies — ever aborts the
// process. Decoders return Status; the server answers with an error kAck
// where it still can and drops the connection (a corrupt stream cannot be
// resynchronized).

#include <cstdint>
#include <string>
#include <vector>

#include "core/serving.h"
#include "core/warning.h"
#include "graph/event_log.h"
#include "rules/rule.h"
#include "util/binio.h"
#include "util/status.h"

namespace glint::fleet::wire {

/// Upper bound on a frame payload; a length prefix beyond this is
/// malformed (never allocated), bounding what a bad peer can make the
/// server buffer.
constexpr uint32_t kMaxFramePayload = 1u << 20;

enum class MsgType : uint8_t {
  kPing = 1,
  kAddHome = 2,
  kAddRule = 3,
  kRemoveRule = 4,
  kEvent = 5,
  kInspect = 6,
  kStats = 7,
  // Replies.
  kPong = 64,
  kAck = 65,
  kWarning = 66,
  kStatsReply = 67,
};

struct Request {
  MsgType type = MsgType::kPing;
  core::HomeId home;
  std::vector<rules::Rule> rules;  ///< kAddHome
  rules::Rule rule;                ///< kAddRule
  int32_t rule_id = 0;             ///< kRemoveRule
  graph::Event event;              ///< kEvent
  double now_hours = 0;            ///< kInspect
};

struct Reply {
  MsgType type = MsgType::kAck;
  int32_t code = 0;     ///< StatusCode as i32; 0 = OK
  std::string message;  ///< error detail when code != 0
  // kWarning payload (valid when code == 0):
  bool threat = false;
  bool drifting = false;
  double confidence = 0;
  std::string rendered;
  // kStatsReply payload:
  uint64_t homes = 0;
  uint64_t rules = 0;
  uint64_t events = 0;
  uint64_t inspects = 0;
  uint64_t bus_rejected = 0;
  uint64_t bus_apply_errors = 0;
};

// ---- Framing ------------------------------------------------------------

/// Appends one frame (header + payload) to `out`.
void AppendFrame(std::vector<char>* out, const std::vector<char>& payload);

/// Decodes one frame from the front of `r`. InvalidArgument on a
/// truncated header/payload, an oversized length prefix, or a checksum
/// mismatch; on OK, `*payload` holds the verified payload bytes and `r`
/// is advanced past the frame.
Status DecodeFrame(util::ByteReader* r, std::vector<char>* payload);

// ---- Message codecs -----------------------------------------------------

std::vector<char> EncodeRequest(const Request& req);
/// Strict decode: unknown type, truncated body, or trailing bytes are
/// InvalidArgument.
Status DecodeRequest(const std::vector<char>& payload, Request* req);

std::vector<char> EncodeReply(const Reply& reply);
Status DecodeReply(const std::vector<char>& payload, Reply* reply);

/// Builds the standard error/ok acknowledgement for `st`.
Reply AckFor(const Status& st);

// ---- Blocking socket I/O (used by client, server, and bench driver) -----

/// Writes one frame to `fd` (full write; EINTR-safe). IOError on failure.
Status SendFrame(int fd, const std::vector<char>& payload);

/// Reads one frame from `fd`. NotFound on a clean EOF at a frame
/// boundary, IOError on a mid-frame EOF or read failure, InvalidArgument
/// on an oversized length prefix or checksum mismatch.
Status RecvFrame(int fd, std::vector<char>* payload);

/// Minimal blocking client: one request/reply exchange per Call.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `req` and blocks for the reply frame.
  Status Call(const Request& req, Reply* reply);

 private:
  int fd_ = -1;
};

}  // namespace glint::fleet::wire
