// glint — command-line interface to the Glint interactive-threat detection
// system.
//
// Subcommands:
//   generate-corpus --out FILE [--scale N] [--seed S]
//       Generate the 5-platform synthetic rule corpus as text (one rule per
//       line, tab-separated platform/id/text).
//   build-dataset --out FILE [--graphs N] [--platform P] [--seed S]
//       Build a labeled interaction-graph dataset and save it in the binary
//       store format.
//   dataset-info FILE
//       Print summary statistics of a stored dataset.
//   train --model-dir DIR [--graphs N] [--epochs E]
//       Run the offline stage and save the ITGNN-S / ITGNN-C models.
//   inspect --model-dir DIR [--demo table1|table4|blueprints]
//       Load trained models and inspect a rule deployment (demo rule sets).
//   serve [--model-dir DIR] [--homes N] [--hours H] [--inspect-every H]
//         [--batch N] [--stats] [--stats-every H]
//       Serve many simulated homes from one shared detector: per-home
//       DeploymentSessions ingest event streams and are inspected in
//       parallel by the ServingEngine (warm incremental pipeline).
//       --stats prints per-stage latency and cache-hit telemetry at the end
//       (plus a machine-readable STATS_JSON line); --stats-every H also
//       prints a periodic snapshot every H simulated hours. --state-dir DIR
//       makes serving durable: state is recovered from DIR on startup
//       (snapshot + WAL replay, torn tails truncated), every mutation is
//       journaled, and a snapshot is written on exit.
//   fleet-serve [--model-dir DIR] [--shards N] [--homes N] [--hours H]
//         [--inspect-every H] [--batch N] [--state-dir DIR] [--stats]
//         [--bus-capacity N] [--bus-policy block|reject]
//         [--port P [--duration SECS]]
//       Sharded fleet serving: N ServingEngine shards behind a consistent-
//       hash HomeId router, mutations flowing through a bounded per-shard
//       event bus. Without --port, drives simulated homes through the bus
//       locally (the `serve` loop at fleet shape). With --port, listens on
//       127.0.0.1:P speaking the binary wire protocol (see
//       src/fleet/wire.h) until --duration seconds elapse (or stdin closes
//       when --duration is 0). --state-dir DIR journals each shard to
//       DIR/shard-K/ and recovers on startup.
//   stats
//       Document the glint::obs instrument taxonomy and STATS_JSON schema.
//   simulate [--hours H] [--attack NAME] [--seed S]
//       Run the smart-home testbed simulator and print its event log.
//   analyze [--demo table1|table4|blueprints]
//       Run the rule-semantics threat analyzer (no ML) on a demo rule set.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/glint.h"
#include "core/serving.h"
#include "fleet/server.h"
#include "graph/dataset_store.h"
#include "obs/obs.h"
#include "graph/threat_analyzer.h"
#include "testbed/attacks.h"
#include "testbed/scenarios.h"
#include "util/string_utils.h"

using namespace glint;  // NOLINT

namespace {

// Minimal flag parser: --key value pairs after the subcommand. A --key
// followed by another --flag (or by nothing) is a valueless boolean flag
// and parses as "1" (e.g. `serve --stats`).
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const char* key = argv[i] + 2;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[key] = argv[i + 1];
      ++i;
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

std::vector<rules::Rule> DemoRules(const std::string& name) {
  if (name == "table4") return rules::CorpusGenerator::Table4Settings();
  if (name == "blueprints") {
    std::vector<rules::Rule> all;
    for (const auto& g : rules::CorpusGenerator::NewThreatBlueprints()) {
      all.insert(all.end(), g.begin(), g.end());
    }
    return all;
  }
  return rules::CorpusGenerator::Table1Rules();
}

core::Glint::Options DefaultOptions(int graphs, int epochs, uint64_t seed) {
  core::Glint::Options opts;
  opts.corpus.ifttt = 500;
  opts.corpus.smartthings = 80;
  opts.corpus.alexa = 150;
  opts.corpus.google_assistant = 80;
  opts.corpus.home_assistant = 80;
  opts.num_training_graphs = graphs;
  opts.builder.max_nodes = 10;
  opts.builder.size_skew = 2.0;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 64;
  opts.train.epochs = epochs;
  opts.train.oversample_factor = 2.5;
  opts.pairs.num_positive = 200;
  opts.pairs.num_negative = 300;
  opts.seed = seed;
  return opts;
}

int CmdGenerateCorpus(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate-corpus requires --out FILE\n");
    return 2;
  }
  rules::CorpusConfig cc;
  const double scale = std::atof(FlagOr(flags, "scale", "1").c_str());
  cc.ifttt = static_cast<int>(cc.ifttt * scale);
  cc.alexa = static_cast<int>(cc.alexa * scale);
  cc.google_assistant = static_cast<int>(cc.google_assistant * scale);
  cc.seed = std::strtoull(FlagOr(flags, "seed", "4242").c_str(), nullptr, 10);
  auto corpus = rules::CorpusGenerator(cc).Generate();
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  for (const auto& r : corpus) {
    std::fprintf(f, "%s\t%d\t%s\n", rules::PlatformName(r.platform), r.id,
                 r.text.c_str());
  }
  std::fclose(f);
  std::printf("wrote %zu rules to %s\n", corpus.size(), out.c_str());
  return 0;
}

int CmdBuildDataset(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "build-dataset requires --out FILE\n");
    return 2;
  }
  const int n = std::atoi(FlagOr(flags, "graphs", "500").c_str());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1234").c_str(), nullptr, 10);
  const std::string platform = FlagOr(flags, "platform", "all");

  rules::CorpusConfig cc;
  auto corpus = rules::CorpusGenerator(cc).Generate();
  std::vector<rules::Rule> pool;
  if (platform == "all") {
    pool = corpus;
  } else {
    for (const auto& r : corpus) {
      if (platform == rules::PlatformName(r.platform)) pool.push_back(r);
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no rules for platform '%s'\n", platform.c_str());
    return 2;
  }
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder::Config bc;
  bc.seed = seed;
  graph::GraphBuilder builder(bc, &wm, &sm);
  auto ds = builder.BuildDataset(pool, n);
  Status st = graph::DatasetStore::Save(ds, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu graphs (%d vulnerable) to %s\n", ds.size(),
              ds.CountVulnerable(), out.c_str());
  return 0;
}

int CmdDatasetInfo(const std::string& path) {
  auto loaded = graph::DatasetStore::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& ds = loaded.value();
  double nodes = 0, edges = 0;
  int hetero = 0;
  std::map<std::string, int> type_counts;
  for (const auto& g : ds.graphs) {
    nodes += g.num_nodes();
    edges += g.num_edges();
    hetero += g.IsHeterogeneous();
    for (auto t : g.threat_types()) {
      type_counts[graph::ThreatTypeName(t)] += 1;
    }
  }
  std::printf("%s: %zu graphs, %d vulnerable (%.1f%%), %d heterogeneous\n",
              path.c_str(), ds.size(), ds.CountVulnerable(),
              100.0 * ds.CountVulnerable() / std::max<size_t>(1, ds.size()),
              hetero);
  std::printf("mean %.1f nodes, %.1f edges\n",
              nodes / std::max<size_t>(1, ds.size()),
              edges / std::max<size_t>(1, ds.size()));
  for (const auto& [name, count] : type_counts) {
    std::printf("  %-20s %d graphs\n", name.c_str(), count);
  }
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "model-dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "train requires --model-dir DIR\n");
    return 2;
  }
  const int graphs = std::atoi(FlagOr(flags, "graphs", "600").c_str());
  const int epochs = std::atoi(FlagOr(flags, "epochs", "14").c_str());
  core::Glint detector(DefaultOptions(graphs, epochs, 97));
  std::printf("training offline (%d graphs, %d epochs)...\n", graphs, epochs);
  detector.TrainOffline();
  Status st = detector.SaveModels(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s/itgnn_s.bin and %s/itgnn_c.bin\n", dir.c_str(),
              dir.c_str());
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "model-dir", "");
  core::Glint detector(DefaultOptions(600, 14, 97));
  if (!dir.empty()) {
    Status st = detector.LoadModels(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded models from %s\n", dir.c_str());
    std::printf("note: the correlation model is retrained (it is cheap)\n");
    // The loaded ITGNN needs the corpus-based builder for embeddings only;
    // retrain the light parts.
  } else {
    std::printf("no --model-dir given; training a fresh detector...\n");
  }
  if (dir.empty()) detector.TrainOffline();

  auto deployed = DemoRules(FlagOr(flags, "demo", "table1"));
  std::printf("inspecting %zu deployed rules...\n", deployed.size());
  nlp::EmbeddingModel wm(300, 97 ^ 0x17), sm(512, 97 ^ 0x18);
  auto g = detector.ready() && !dir.empty()
               ? graph::GraphBuilder({}, &wm, &sm).BuildFromRules(deployed)
               : detector.BuildGraph(deployed);
  auto warning = detector.InspectGraph(g);
  std::printf("%s\n", warning.Render().c_str());
  return 0;
}

/// Fleet summary + registry telemetry as one single-line JSON object:
/// {"serving":{...per-home aggregate...},"counters":{...},"gauges":{...},
///  "histograms":{...}} — see `glint stats` for the schema.
std::string StatsJson(size_t homes,
                      const core::DeploymentSession::CacheStats& agg) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"serving\":{\"homes\":%zu,\"rules\":%llu,\"inspects\":%llu,"
      "\"events\":%llu,\"verdict_hits\":%llu,\"verdict_misses\":%llu,"
      "\"tensor_hits\":%llu,\"tensor_misses\":%llu},",
      homes, static_cast<unsigned long long>(agg.rules),
      static_cast<unsigned long long>(agg.inspects),
      static_cast<unsigned long long>(agg.events),
      static_cast<unsigned long long>(agg.verdict_hits),
      static_cast<unsigned long long>(agg.verdict_misses),
      static_cast<unsigned long long>(agg.tensor_hits),
      static_cast<unsigned long long>(agg.tensor_misses));
  // Splice the registry object in after the serving section.
  std::string registry = obs::Registry::Global().TakeSnapshot().RenderJson();
  return std::string(buf) + registry.substr(1);
}

std::string StatsJson(const core::ServingEngine& engine) {
  return StatsJson(engine.num_homes(), engine.AggregateStats());
}

double HitRate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0 : 100.0 * double(hits) / double(total);
}

void PrintStatsReport(const core::Glint& detector,
                      const core::ServingEngine& engine) {
  std::printf("\n---- telemetry (glint::obs) ----\n");
  std::printf("%s",
              obs::Registry::Global().TakeSnapshot().RenderText().c_str());
  const auto agg = engine.AggregateStats();
  const auto& corr = detector.detector().correlation_cache();
  std::printf("cache hit rates:\n");
  std::printf("  %-44s %6.1f%%  (%llu/%llu)\n", "verdict (no-change inspect)",
              HitRate(agg.verdict_hits, agg.verdict_misses),
              static_cast<unsigned long long>(agg.verdict_hits),
              static_cast<unsigned long long>(agg.verdict_hits +
                                              agg.verdict_misses));
  std::printf("  %-44s %6.1f%%  (%llu/%llu)\n", "tensorization (GnnGraph)",
              HitRate(agg.tensor_hits, agg.tensor_misses),
              static_cast<unsigned long long>(agg.tensor_hits),
              static_cast<unsigned long long>(agg.tensor_hits +
                                              agg.tensor_misses));
  std::printf("  %-44s %6.1f%%  (%zu/%zu)\n", "correlation verdict memo",
              HitRate(corr.hits(), corr.misses()), corr.hits(),
              corr.hits() + corr.misses());
  std::printf("per-home:\n");
  for (int h = 0; h < static_cast<int>(engine.num_homes()); ++h) {
    // home_view: the durable-safe read accessor (serve may be journaled).
    const auto s = engine.home_view(h).Stats();
    std::printf(
        "  %-8s rules=%-4llu events=%-6llu inspects=%-5llu "
        "verdict_hits=%-5llu tensor_hits=%llu\n",
        engine.home_id(h).c_str(), static_cast<unsigned long long>(s.rules),
        static_cast<unsigned long long>(s.events),
        static_cast<unsigned long long>(s.inspects),
        static_cast<unsigned long long>(s.verdict_hits),
        static_cast<unsigned long long>(s.tensor_hits));
  }
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  const int homes = std::atoi(FlagOr(flags, "homes", "4").c_str());
  const double hours = std::atof(FlagOr(flags, "hours", "6").c_str());
  const double every = std::atof(FlagOr(flags, "inspect-every", "1").c_str());
  const double stats_every =
      std::atof(FlagOr(flags, "stats-every", "0").c_str());
  const bool stats = flags.count("stats") > 0 || stats_every > 0;
  // 0 = sequential InspectAll; N > 0 packs up to N homes per super-graph.
  const int batch = std::atoi(FlagOr(flags, "batch", "0").c_str());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "2026").c_str(), nullptr, 10);
  const std::string dir = FlagOr(flags, "model-dir", "");
  const std::string state_dir = FlagOr(flags, "state-dir", "");

  core::Glint detector(DefaultOptions(600, 14, 97));
  if (!dir.empty()) {
    Status st = detector.LoadModels(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded models from %s\n", dir.c_str());
  } else {
    std::printf("no --model-dir given; training a fresh detector...\n");
    detector.TrainOffline();
  }

  // One detector, many homes: each home gets a DeploymentSession sharing
  // the trained models; events stream in and periodic InspectAll calls run
  // the warm incremental pipeline across the thread pool.
  core::ServingEngine engine(&detector.detector());
  if (!state_dir.empty()) {
    // Durable serving: replay whatever a previous run left in the state
    // dir, then journal everything this run does.
    Status st = engine.Recover(state_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const auto& ri = engine.recovery_info();
    std::printf(
        "recovered %zu homes from %s (snapshot=%s seq=%llu, %zu WAL records "
        "replayed, %zu skipped%s)\n",
        engine.num_homes(), state_dir.c_str(),
        ri.snapshot_loaded ? "yes" : "no",
        static_cast<unsigned long long>(ri.snapshot_seq), ri.tail_records,
        ri.skipped_records,
        ri.tail_torn ? ", torn tail truncated" : "");
  }

  // Resume the simulated clock past anything already journaled so replayed
  // state and fresh events stay chronological.
  double resume_hour = 18.0;
  for (int h = 0; h < static_cast<int>(engine.num_homes()); ++h) {
    const core::DeploymentSession* s = engine.FindHome(h);
    if (s != nullptr) {
      resume_hour = std::max(resume_hour, s->live().latest_event_hours());
    }
  }

  std::vector<testbed::SmartHome> sims;
  std::vector<core::HomeId> ids;
  std::vector<size_t> cursor(static_cast<size_t>(homes), 0);
  sims.reserve(static_cast<size_t>(homes));
  ids.reserve(static_cast<size_t>(homes));
  for (int h = 0; h < homes; ++h) {
    testbed::SmartHome::Config cfg;
    cfg.seed = seed + static_cast<uint64_t>(h);
    cfg.start_hour = resume_hour;
    auto deployed = testbed::ScenarioGenerator::BenignDeployment();
    sims.emplace_back(cfg, deployed);
    // Stable ids: a rerun against the same --state-dir finds its homes
    // again instead of re-registering them.
    ids.push_back("home-" + std::to_string(h));
    if (!engine.has_home(ids.back())) {
      auto added = engine.TryAddHome(ids.back(), deployed);
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("serving %d homes, %zu rules total%s\n", homes,
              engine.total_rules(),
              engine.durable() ? " (journaled)" : "");

  const double start = sims.empty() ? resume_hour : sims[0].now();
  double next_stats = stats_every > 0 ? start + stats_every : 0;
  for (double t = start + every; t <= start + hours + 1e-9; t += every) {
    for (int h = 0; h < homes; ++h) {
      auto& sim = sims[static_cast<size_t>(h)];
      sim.Simulate(t - sim.now());
      const auto& events = sim.log().events();
      for (size_t& i = cursor[static_cast<size_t>(h)]; i < events.size();
           ++i) {
        // Address homes by stable id through the validating path: serve
        // is the untrusted-frontend shape.
        Status st = engine.TryOnEvent(ids[static_cast<size_t>(h)], events[i]);
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    // The sims accumulate their clocks in 10-minute ticks, so after enough
    // steps sim.now() (and the stamp of its last event) can drift a few ulp
    // past the loop's t; inspect at the true event frontier so a long run
    // never asks LiveGraph about a time before its latest event.
    double t_inspect = t;
    for (const auto& sim : sims) t_inspect = std::max(t_inspect, sim.now());
    // Batched and sequential fleet inspection are bit-identical
    // (tests/batched_serving_test.cc); --batch N trades per-home dispatch
    // for one block-diagonal forward per N homes.
    auto warnings = batch > 0 ? engine.InspectAllBatched(t_inspect, batch)
                              : engine.InspectAll(t_inspect);
    int threats = 0, drifting = 0;
    for (const auto& w : warnings) {
      threats += w.threat;
      drifting += w.drifting;
    }
    std::printf("t=%5.1fh  homes=%d threats=%d drifting=%d\n", t, homes,
                threats, drifting);
    for (int h = 0; h < homes; ++h) {
      const auto& w = warnings[static_cast<size_t>(h)];
      if (w.threat || w.drifting) {
        std::printf("-- %s --\n%s\n", engine.home_id(h).c_str(),
                    w.Render().c_str());
      }
    }
    if (stats_every > 0 && t + 1e-9 >= next_stats) {
      std::printf("---- stats snapshot @ t=%.1fh ----\n%s",
                  t, obs::Registry::Global().TakeSnapshot().RenderText()
                         .c_str());
      next_stats += stats_every;
    }
  }
  if (engine.durable()) {
    Status st = engine.Snapshot();
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("state snapshotted to %s (seq=%llu)\n", state_dir.c_str(),
                static_cast<unsigned long long>(engine.journal_seq()));
  }
  if (stats) {
    PrintStatsReport(detector, engine);
    std::printf("STATS_JSON %s\n", StatsJson(engine).c_str());
  } else {
    const auto agg = engine.AggregateStats();
    std::printf(
        "cache stats: %llu inspections, %llu verdict hits, %llu tensor "
        "hits, %zu correlation memo hits\n",
        static_cast<unsigned long long>(agg.inspects),
        static_cast<unsigned long long>(agg.verdict_hits),
        static_cast<unsigned long long>(agg.tensor_hits),
        detector.detector().correlation_cache().hits());
  }
  return 0;
}

void PrintFleetStatsReport(const fleet::ShardedFleet& fleet,
                           const fleet::EventBus& bus) {
  std::printf("\n---- fleet telemetry ----\n");
  std::printf("%s",
              obs::Registry::Global().TakeSnapshot().RenderText().c_str());
  std::printf("per-shard:\n");
  for (int k = 0; k < fleet.num_shards(); ++k) {
    const auto& shard = fleet.shard(k);
    const auto s = shard.AggregateStats();
    std::printf(
        "  shard %-2d homes=%-5zu rules=%-5llu events=%-7llu "
        "inspects=%-6llu queue_hw=%zu\n",
        k, shard.num_homes(), static_cast<unsigned long long>(s.rules),
        static_cast<unsigned long long>(s.events),
        static_cast<unsigned long long>(s.inspects),
        bus.queue_high_water(k));
  }
  std::printf("bus: rejected=%llu apply_errors=%llu\n",
              static_cast<unsigned long long>(bus.rejected()),
              static_cast<unsigned long long>(bus.apply_errors()));
}

int CmdFleetServe(const std::map<std::string, std::string>& flags) {
  const int shards = std::atoi(FlagOr(flags, "shards", "4").c_str());
  const int homes = std::atoi(FlagOr(flags, "homes", "8").c_str());
  const double hours = std::atof(FlagOr(flags, "hours", "6").c_str());
  const double every = std::atof(FlagOr(flags, "inspect-every", "1").c_str());
  const int batch = std::atoi(FlagOr(flags, "batch", "256").c_str());
  const bool stats = flags.count("stats") > 0;
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "2026").c_str(), nullptr, 10);
  const std::string dir = FlagOr(flags, "model-dir", "");
  const int port = std::atoi(FlagOr(flags, "port", "-1").c_str());
  const double duration = std::atof(FlagOr(flags, "duration", "0").c_str());
  const std::string policy = FlagOr(flags, "bus-policy", "block");
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (policy != "block" && policy != "reject") {
    std::fprintf(stderr, "--bus-policy must be block or reject\n");
    return 2;
  }

  core::Glint detector(DefaultOptions(600, 14, 97));
  if (!dir.empty()) {
    Status st = detector.LoadModels(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded models from %s\n", dir.c_str());
  } else {
    std::printf("no --model-dir given; training a fresh detector...\n");
    detector.TrainOffline();
  }

  // One FleetConfig block carries every shared knob: shard count, the
  // per-shard engine config, and the state-dir root (shard K journals to
  // <state-dir>/shard-K/).
  fleet::FleetConfig fc;
  fc.num_shards = shards;
  fc.state_dir = FlagOr(flags, "state-dir", "");
  fleet::ShardedFleet fleet(&detector.detector(), fc);
  if (!fc.state_dir.empty()) {
    Status st = fleet.Recover();
    if (!st.ok()) {
      std::fprintf(stderr, "fleet recovery failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("recovered %zu homes across %d shards from %s\n",
                fleet.num_homes(), shards, fc.state_dir.c_str());
  }

  fleet::EventBus::Config bus_cfg;
  bus_cfg.capacity = static_cast<size_t>(
      std::atoi(FlagOr(flags, "bus-capacity", "1024").c_str()));
  bus_cfg.policy = policy == "reject" ? fleet::EventBus::Backpressure::kReject
                                      : fleet::EventBus::Backpressure::kBlock;

  if (port >= 0) {
    // Network mode: speak the wire protocol on 127.0.0.1 until --duration
    // seconds elapse (0 = until stdin closes).
    fleet::FleetServer::Config sc;
    sc.port = port;
    sc.bus = bus_cfg;
    fleet::FleetServer server(&fleet, sc);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fleet-serve listening on 127.0.0.1:%d (%d shards, bus %s)\n",
                server.port(), shards, policy.c_str());
    std::fflush(stdout);
    if (duration > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(duration * 1000)));
    } else {
      char line[256];
      while (std::fgets(line, sizeof line, stdin) != nullptr) {
      }
    }
    server.Stop();  // drains the bus: everything accepted is applied
    if (fleet.durable()) {
      st = fleet.Snapshot();
      if (!st.ok()) {
        std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    fleet.PublishShardGauges();
    if (stats) PrintFleetStatsReport(fleet, server.bus());
    std::printf("STATS_JSON %s\n",
                StatsJson(fleet.num_homes(), fleet.AggregateStats()).c_str());
    return 0;
  }

  // Driver mode: simulate homes locally, posting every event through the
  // bus — the serve loop at fleet shape. Registration is control-plane and
  // synchronous; the event stream is data-plane and rides the bus.
  fleet::EventBus bus(&fleet, bus_cfg);
  std::vector<testbed::SmartHome> sims;
  std::vector<core::HomeId> ids;
  std::vector<size_t> cursor(static_cast<size_t>(homes), 0);
  sims.reserve(static_cast<size_t>(homes));
  ids.reserve(static_cast<size_t>(homes));
  double resume_hour = 18.0;
  for (int k = 0; k < fleet.num_shards(); ++k) {
    const auto& shard = fleet.shard(k);
    for (int h = 0; h < static_cast<int>(shard.num_homes()); ++h) {
      resume_hour =
          std::max(resume_hour, shard.home_view(h).live().latest_event_hours());
    }
  }
  for (int h = 0; h < homes; ++h) {
    testbed::SmartHome::Config cfg;
    cfg.seed = seed + static_cast<uint64_t>(h);
    cfg.start_hour = resume_hour;
    auto deployed = testbed::ScenarioGenerator::BenignDeployment();
    sims.emplace_back(cfg, deployed);
    ids.push_back("home-" + std::to_string(h));
    if (!fleet.has_home(ids.back())) {
      auto added = fleet.TryAddHome(ids.back(), deployed);
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("fleet-serving %d homes on %d shards, %zu rules total%s\n",
              homes, shards, fleet.total_rules(),
              fleet.durable() ? " (journaled)" : "");

  const double start = sims.empty() ? resume_hour : sims[0].now();
  for (double t = start + every; t <= start + hours + 1e-9; t += every) {
    for (int h = 0; h < homes; ++h) {
      auto& sim = sims[static_cast<size_t>(h)];
      sim.Simulate(t - sim.now());
      const auto& events = sim.log().events();
      for (size_t& i = cursor[static_cast<size_t>(h)]; i < events.size();
           ++i) {
        fleet::BusMessage msg;
        msg.kind = fleet::BusMessage::Kind::kEvent;
        msg.home = ids[static_cast<size_t>(h)];
        msg.event = events[i];
        Status st = bus.Post(std::move(msg));
        if (!st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    double t_inspect = t;
    for (const auto& sim : sims) t_inspect = std::max(t_inspect, sim.now());
    bus.Flush();  // inspection must cover every accepted event
    auto fw = fleet.InspectAll(t_inspect, batch);
    int threats = 0, drifting = 0;
    for (const auto& w : fw.warnings) {
      threats += w.threat;
      drifting += w.drifting;
    }
    std::printf("t=%5.1fh  homes=%zu threats=%d drifting=%d\n", t,
                fw.warnings.size(), threats, drifting);
    for (size_t i = 0; i < fw.warnings.size(); ++i) {
      const auto& w = fw.warnings[i];
      if (w.threat || w.drifting) {
        std::printf("-- %s --\n%s\n", fw.ids[i].c_str(), w.Render().c_str());
      }
    }
  }
  bus.Stop();
  if (fleet.durable()) {
    Status st = fleet.Snapshot();
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("fleet state snapshotted to %s\n", fc.state_dir.c_str());
  }
  fleet.PublishShardGauges();
  if (stats) PrintFleetStatsReport(fleet, bus);
  std::printf("STATS_JSON %s\n",
              StatsJson(fleet.num_homes(), fleet.AggregateStats()).c_str());
  return 0;
}

int CmdStats() {
  std::printf(
      "glint::obs — process-wide telemetry registry\n\n"
      "Instruments are named glint.<subsystem>.<name>; suffixes:\n"
      "  *_ms       histogram of wall-time per stage, in milliseconds\n"
      "  *.hits / *.misses   cache counters (hit rate = hits/(hits+misses))\n"
      "  (others)   plain event counters or gauges (value + peak)\n\n"
      "subsystems:\n"
      "  glint.nlp.*         sentence embedding + encode cache\n"
      "  glint.correlation.* rule-pair correlation model + verdict memo\n"
      "  glint.graph.*       interaction-graph build + node-feature memo\n"
      "  glint.live.*        LiveGraph incremental deltas / materialize\n"
      "  glint.gnn.*         tensorization, ITGNN forward (sequential +\n"
      "                      batched), GnnGraph cache\n"
      "  glint.kernel.*      selected SIMD kernel backend (gauge: the\n"
      "                      kernels::Backend code; GLINT_KERNEL overrides)\n"
      "  glint.batch.*       block-diagonal super-graph sizes per batched\n"
      "                      fleet inspection (InspectAllBatched)\n"
      "  glint.explain.*     gradient screen + occlusion refinement\n"
      "  glint.drift.*       behavioral drift detector\n"
      "  glint.detector.*    end-to-end Analyze verdicts\n"
      "  glint.session.*     per-home Inspect + verdict LRU\n"
      "  glint.serving.*     fleet event routing + InspectAll + WAL append\n"
      "  glint.journal.*     WAL appends, snapshot writes (durable serving)\n"
      "  glint.recovery.*    snapshots loaded, records replayed, torn tails\n"
      "                      truncated + bytes dropped (glint serve\n"
      "                      --state-dir DIR)\n"
      "  glint.threadpool.*  queue depth, task wait/run latency\n\n"
      "`glint serve --stats` prints a human-readable report, then one\n"
      "machine-readable line:\n\n"
      "  STATS_JSON {\"serving\":{\"homes\":N,\"rules\":N,\"inspects\":N,\n"
      "    \"events\":N,\"verdict_hits\":N,\"verdict_misses\":N,\n"
      "    \"tensor_hits\":N,\"tensor_misses\":N},\n"
      "   \"counters\":{\"name\":N,...},\n"
      "   \"gauges\":{\"name\":{\"value\":N,\"peak\":N},...},\n"
      "   \"histograms\":{\"name\":{\"count\":N,\"sum_ms\":X,\"mean\":X,\n"
      "     \"p50\":X,\"p95\":X,\"p99\":X},...}}\n\n"
      "Collection is on by default; set GLINT_OBS=off to reduce every\n"
      "instrument to a relaxed-load branch, or configure with\n"
      "-DGLINT_OBS_DISABLE=ON to compile the layer out entirely.\n"
      "Overhead budget: <= 5%% on the warm serving path (enforced by\n"
      "bench_obs_overhead in tools/check.sh).\n");
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  const double hours = std::atof(FlagOr(flags, "hours", "24").c_str());
  const std::string attack_name = FlagOr(flags, "attack", "none");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1337").c_str(), nullptr, 10);

  testbed::SmartHome::Config cfg;
  cfg.seed = seed;
  testbed::SmartHome home(cfg, testbed::ScenarioGenerator::BenignDeployment());
  home.Simulate(hours / 2);
  for (int a = 0; a < testbed::kNumAttackTypes; ++a) {
    const auto type = static_cast<testbed::AttackType>(a);
    if (attack_name == testbed::AttackName(type) &&
        type != testbed::AttackType::kNone) {
      Rng rng(seed ^ 0xa77ac);
      testbed::ApplyAttack(type, &home, &rng);
      std::printf("** injected attack: %s **\n", attack_name.c_str());
    }
  }
  home.Simulate(hours / 2);
  for (const auto& line : home.log().Render()) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("-- %zu events over %.1f simulated hours --\n",
              home.log().size(), hours);
  return 0;
}

int CmdAnalyze(const std::map<std::string, std::string>& flags) {
  auto deployed = DemoRules(FlagOr(flags, "demo", "table1"));
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto g = builder.BuildFromRules(deployed);
  std::printf("graph: %d nodes, %d edges, vulnerable=%s\n", g.num_nodes(),
              g.num_edges(), g.vulnerable() ? "YES" : "no");
  for (const auto& f : graph::ThreatAnalyzer::DetectClassic(g)) {
    std::printf("  [classic] %-18s rules:", graph::ThreatTypeName(f.type));
    for (int n : f.nodes) {
      std::printf(" #%d", g.nodes()[static_cast<size_t>(n)].rule.id);
    }
    std::printf("\n");
  }
  for (const auto& f : graph::ThreatAnalyzer::DetectNewTypes(g)) {
    std::printf("  [new]     %-18s rules:", graph::ThreatTypeName(f.type));
    for (int n : f.nodes) {
      std::printf(" #%d", g.nodes()[static_cast<size_t>(n)].rule.id);
    }
    std::printf("\n");
  }
  return 0;
}

void Usage() {
  std::printf(
      "glint — interactive-threat detection for smart home rules\n\n"
      "usage: glint <command> [flags]\n\n"
      "commands:\n"
      "  generate-corpus --out FILE [--scale N] [--seed S]\n"
      "  build-dataset   --out FILE [--graphs N] [--platform P] [--seed S]\n"
      "  dataset-info    FILE\n"
      "  train           --model-dir DIR [--graphs N] [--epochs E]\n"
      "  inspect         [--model-dir DIR] [--demo table1|table4|blueprints]\n"
      "  serve           [--model-dir DIR] [--homes N] [--hours H]\n"
      "                  [--inspect-every H] [--batch N] [--seed S]\n"
      "                  [--stats] [--stats-every H] [--state-dir DIR]\n"
      "  fleet-serve     [--model-dir DIR] [--shards N] [--homes N]\n"
      "                  [--hours H] [--inspect-every H] [--batch N]\n"
      "                  [--state-dir DIR] [--stats] [--bus-capacity N]\n"
      "                  [--bus-policy block|reject]\n"
      "                  [--port P [--duration SECS]]\n"
      "  stats\n"
      "  simulate        [--hours H] [--attack NAME] [--seed S]\n"
      "  analyze         [--demo table1|table4|blueprints]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate-corpus") return CmdGenerateCorpus(flags);
  if (cmd == "build-dataset") return CmdBuildDataset(flags);
  if (cmd == "dataset-info") {
    if (argc < 3) {
      std::fprintf(stderr, "dataset-info requires a FILE\n");
      return 2;
    }
    return CmdDatasetInfo(argv[2]);
  }
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "fleet-serve") return CmdFleetServe(flags);
  if (cmd == "stats") return CmdStats();
  if (cmd == "simulate") return CmdSimulate(flags);
  if (cmd == "analyze") return CmdAnalyze(flags);
  Usage();
  return 2;
}
