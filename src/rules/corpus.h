#pragma once

#include <vector>

#include "rules/phrasing.h"
#include "rules/rule.h"
#include "util/rng.h"

namespace glint::rules {

/// Scaled corpus sizes mirroring Table 2's proportions. The paper crawled
/// {316928, 185, 5506, 5292, 574} rules; we default to a 1:100 scale for
/// IFTTT / Alexa / Google Assistant and keep the small platforms intact so
/// the "insufficient data" phenomenon (SmartThings) survives.
struct CorpusConfig {
  int ifttt = 3169;
  int smartthings = 185;
  int alexa = 550;
  int google_assistant = 529;
  int home_assistant = 574;
  uint64_t seed = 4242;

  int CountFor(Platform p) const {
    switch (p) {
      case Platform::kIFTTT: return ifttt;
      case Platform::kSmartThings: return smartthings;
      case Platform::kAlexa: return alexa;
      case Platform::kGoogleAssistant: return google_assistant;
      case Platform::kHomeAssistant: return home_assistant;
    }
    return 0;
  }
};

/// Synthetic rule corpus generator — the substitute for the paper's crawl
/// of five platforms (Sec. 4.1). Every generated rule carries both the
/// ground-truth semantic IR and a rendered noisy NL description.
class CorpusGenerator {
 public:
  explicit CorpusGenerator(const CorpusConfig& config = {});

  /// Generates the full corpus: config.CountFor(p) rules per platform.
  std::vector<Rule> Generate();

  /// Generates `n` rules for one platform.
  std::vector<Rule> GeneratePlatform(Platform p, int n);

  /// Generates a single random rule.
  Rule GenerateRule(Platform p);

  /// The nine concrete rules of the paper's Table 1 (running example).
  static std::vector<Rule> Table1Rules();

  /// The thirteen settings of Table 4 (threat-type examples).
  static std::vector<Rule> Table4Settings();

  /// Home Assistant blueprint groups exhibiting the four *new* threat types
  /// of Sec. 4.7 (action block, action ablation, trigger intake, condition
  /// duplicate). Each inner vector is one co-deployed rule group.
  static std::vector<std::vector<Rule>> NewThreatBlueprints();

 private:
  TriggerSpec RandomTrigger(Rng* rng);
  TriggerSpec RandomWebTrigger(Rng* rng);
  ConditionSpec RandomCondition(Rng* rng);
  ActionSpec RandomAction(Rng* rng);
  ActionSpec RandomWebAction(Rng* rng);
  /// Generates one rule with explicit id and RNG/phrasing streams; the
  /// sharded generator gives each shard its own streams so the corpus is
  /// identical for any thread count.
  Rule GenerateRuleImpl(Platform p, int id, Rng* rng,
                        PhrasingEngine* phrasing);

  CorpusConfig config_;
  Rng rng_;
  PhrasingEngine phrasing_;
  int next_id_ = 1;
};

}  // namespace glint::rules
