// Incremental-vs-cold equivalence for the LiveGraph delta API: after any
// random sequence of AddRule / RemoveRule / OnEvent, the materialized
// static and real-time graphs must be bit-identical to a cold
// GraphBuilder::BuildFromRules / BuildRealTime over the same rules and
// events (same node order, same edge insertion order, same labels).

#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/event_log.h"
#include "graph/live_graph.h"
#include "rules/corpus.h"
#include "util/rng.h"

namespace glint::graph {
namespace {

const nlp::EmbeddingModel& WordModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(300, 17);
  return *m;
}
const nlp::EmbeddingModel& SentenceModel() {
  static const nlp::EmbeddingModel* m = new nlp::EmbeddingModel(512, 18);
  return *m;
}

GraphBuilder& Builder() {
  static GraphBuilder* b =
      new GraphBuilder({}, &WordModel(), &SentenceModel());
  return *b;
}

std::vector<rules::Rule> Pool() {
  rules::CorpusConfig cc;
  cc.ifttt = 120;
  cc.smartthings = 30;
  cc.alexa = 40;
  cc.google_assistant = 20;
  cc.home_assistant = 20;
  auto pool = rules::CorpusGenerator(cc).Generate();
  // Re-id so RemoveRule targets are unambiguous.
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i].id = 9000 + static_cast<int>(i);
  }
  return pool;
}

LiveGraph MakeLive(double window_hours = 3.0) {
  return LiveGraph(
      {window_hours, true},
      [](const rules::Rule& a, const rules::Rule& b) {
        return rules::RuleTriggersRule(a, b);
      },
      [](const rules::Rule& r) { return Builder().MakeNode(r); });
}

// An event that fires `r`'s trigger.
Event TriggerEvent(const rules::Rule& r, double t) {
  Event e;
  e.time_hours = t;
  e.device = r.trigger.device;
  e.state = r.trigger.state;
  e.location = r.location;
  return e;
}

// An event reporting the effect of `r`'s action `a`.
Event EffectEvent(const rules::Rule& r, size_t a, double t) {
  Event e;
  e.time_hours = t;
  e.device = r.actions[a].device;
  e.state = rules::CommandResultState(r.actions[a].command);
  e.location = r.location;
  return e;
}

void ExpectSameGraph(const InteractionGraph& warm,
                     const InteractionGraph& cold, int step) {
  ASSERT_EQ(warm.num_nodes(), cold.num_nodes()) << "step " << step;
  ASSERT_EQ(warm.num_edges(), cold.num_edges()) << "step " << step;
  for (int i = 0; i < warm.num_nodes(); ++i) {
    const auto& a = warm.nodes()[static_cast<size_t>(i)];
    const auto& b = cold.nodes()[static_cast<size_t>(i)];
    ASSERT_EQ(a.rule.id, b.rule.id) << "step " << step << " node " << i;
    ASSERT_EQ(a.type, b.type) << "step " << step << " node " << i;
    ASSERT_EQ(a.features, b.features) << "step " << step << " node " << i;
  }
  for (int k = 0; k < warm.num_edges(); ++k) {
    const auto& a = warm.edges()[static_cast<size_t>(k)];
    const auto& b = cold.edges()[static_cast<size_t>(k)];
    ASSERT_EQ(a.src, b.src) << "step " << step << " edge " << k;
    ASSERT_EQ(a.dst, b.dst) << "step " << step << " edge " << k;
  }
  ASSERT_EQ(warm.vulnerable(), cold.vulnerable()) << "step " << step;
  ASSERT_EQ(warm.threat_types(), cold.threat_types()) << "step " << step;
}

TEST(LiveGraphTest, StaticMatchesColdBuildAfterRandomAddRemove) {
  const auto pool = Pool();
  LiveGraph live = MakeLive();
  Rng rng(41);
  size_t next = 0;
  for (int step = 0; step < 60; ++step) {
    if (live.num_rules() == 0 || (rng.Uniform() < 0.7 && next < pool.size())) {
      live.AddRule(pool[next++]);
    } else {
      const auto cur = live.CurrentRules();
      EXPECT_TRUE(live.RemoveRule(cur[rng.Below(cur.size())].id));
    }
    auto warm = live.MaterializeStatic();
    auto cold = Builder().BuildFromRules(live.CurrentRules());
    ExpectSameGraph(warm, cold, step);
  }
}

TEST(LiveGraphTest, RealTimeMatchesColdBuildUnderEventStream) {
  const auto pool = Pool();
  LiveGraph live = MakeLive();
  EventLog log;
  Rng rng(43);
  size_t next = 0;
  double now = 5.0;
  for (int i = 0; i < 12; ++i) live.AddRule(pool[next++]);
  for (int step = 0; step < 120; ++step) {
    const double r = rng.Uniform();
    if (r < 0.1 && next < pool.size()) {
      live.AddRule(pool[next++]);
    } else if (r < 0.15 && live.num_rules() > 2) {
      const auto cur = live.CurrentRules();
      live.RemoveRule(cur[rng.Below(cur.size())].id);
    } else {
      // Event drawn from a deployed rule so edges actually go live: its
      // trigger firing, or one of its action effects.
      now += 0.02 + rng.Uniform() * 0.4;
      const auto cur = live.CurrentRules();
      const auto& rule = cur[rng.Below(cur.size())];
      Event e = (rng.Chance(0.5) || rule.actions.empty())
                    ? TriggerEvent(rule, now)
                    : EffectEvent(rule, rng.Below(rule.actions.size()), now);
      live.OnEvent(e);
      log.Append(e);
    }
    const double inspect_at = now + rng.Uniform() * 0.1;
    auto warm = live.MaterializeRealTime(inspect_at);
    auto cold =
        Builder().BuildRealTime(live.CurrentRules(), log, inspect_at);
    ExpectSameGraph(warm, cold, step);
  }
}

TEST(LiveGraphTest, RealTimeMatchesColdAfterRuleChurnMidStream) {
  // Rules added *after* events must replay the retained window (a rule
  // deployed mid-stream sees the events that are still in scope).
  const auto pool = Pool();
  LiveGraph live = MakeLive();
  EventLog log;
  Rng rng(47);
  size_t next = 0;
  double now = 8.0;
  for (int i = 0; i < 6; ++i) live.AddRule(pool[next++]);
  for (int burst = 0; burst < 6; ++burst) {
    for (int k = 0; k < 10; ++k) {
      now += 0.05 + rng.Uniform() * 0.2;
      const auto cur = live.CurrentRules();
      const auto& rule = cur[rng.Below(cur.size())];
      Event e = (rng.Chance(0.5) || rule.actions.empty())
                    ? TriggerEvent(rule, now)
                    : EffectEvent(rule, rng.Below(rule.actions.size()), now);
      live.OnEvent(e);
      log.Append(e);
    }
    // Churn: one in, one out, then verify equivalence.
    if (next < pool.size()) live.AddRule(pool[next++]);
    const auto cur = live.CurrentRules();
    live.RemoveRule(cur[rng.Below(cur.size())].id);
    auto warm = live.MaterializeRealTime(now);
    auto cold = Builder().BuildRealTime(live.CurrentRules(), log, now);
    ExpectSameGraph(warm, cold, burst);
  }
}

TEST(LiveGraphTest, EdgesMatchMaterializedGraph) {
  // StaticEdges / RealTimeEdges are the exact edge lists of the
  // materialized graphs (sessions key caches off them).
  const auto pool = Pool();
  LiveGraph live = MakeLive();
  for (int i = 0; i < 10; ++i) live.AddRule(pool[static_cast<size_t>(i)]);
  auto edges = live.StaticEdges();
  auto g = live.MaterializeStatic();
  ASSERT_EQ(static_cast<int>(edges.size()), g.num_edges());
  for (size_t k = 0; k < edges.size(); ++k) {
    EXPECT_EQ(edges[k].src, g.edges()[k].src);
    EXPECT_EQ(edges[k].dst, g.edges()[k].dst);
  }
}

}  // namespace
}  // namespace glint::graph
