#pragma once

#include <string>
#include <vector>

namespace glint::rules {

/// Smart-home platforms covered by the paper (Table 2).
enum class Platform {
  kIFTTT = 0,
  kSmartThings,
  kAlexa,
  kGoogleAssistant,
  kHomeAssistant,
};
constexpr int kNumPlatforms = 5;

const char* PlatformName(Platform p);

/// Device taxonomy. The names align with the NLP lexicon vocabulary so that
/// rendered rule sentences round-trip through the parser.
enum class DeviceType {
  kLight = 0,
  kLock,
  kWindow,
  kDoor,
  kGarage,
  kBlind,
  kThermostat,
  kAc,
  kHeater,
  kOven,
  kHumidifier,
  kDehumidifier,
  kFan,
  kTv,
  kSpeaker,
  kVacuum,
  kSprinkler,
  kCoffeeMaker,
  kKettle,
  kCamera,
  kMotionSensor,
  kContactSensor,
  kTemperatureSensor,
  kHumiditySensor,
  kSmokeAlarm,
  kPresenceSensor,
  kLeakSensor,
  kButton,
  kPlug,
  kSecuritySystem,
  kPhone,  ///< notification sink
  // Web services (IFTTT-style non-IoT endpoints; they dominate real IFTTT
  // corpora and rarely participate in physical threats).
  kEmailService,
  kWeatherService,
  kCalendar,
  kSocialMedia,
  kSpreadsheet,
};
constexpr int kNumDeviceTypes = 36;

/// Lexicon word for a device type (e.g. kAc -> "ac").
const char* DeviceWord(DeviceType d);

/// Physical and logical channels through which rules interact.
enum class Channel {
  kNone = 0,
  kTemperature,
  kHumidity,
  kSmoke,
  kMotion,
  kIlluminance,
  kSound,
  kContact,    ///< open/close state of openings
  kLockState,
  kPresence,
  kWater,
  kPower,
  kSecurity,   ///< armed/disarmed, notifications
  kTime,
  kOccupancy,
  kDigital,    ///< web-service events (email, posts, calendar, weather)
};
constexpr int kNumChannels = 16;

const char* ChannelName(Channel c);

/// Commands a rule action can issue to a device.
enum class Command {
  kOn = 0,
  kOff,
  kOpen,
  kClose,
  kLock,
  kUnlock,
  kDim,
  kBrighten,
  kPlay,
  kStopPlay,
  kNotify,
  kSnapshot,
  kArm,
  kDisarm,
  kStartClean,
  kSetLevel,   ///< set an attribute to a fixed value (e.g. brightness 100%)
};

const char* CommandWord(Command c);

/// True when the two commands drive the same attribute in opposite
/// directions (on/off, open/close, lock/unlock, dim/brighten, ...).
bool CommandsOppose(Command a, Command b);

/// Environmental side effect of executing `cmd` on a device of type `d`:
/// which channel it perturbs and in which direction (+1 raises the channel
/// value, -1 lowers it, 0 none). E.g. (kHeater, kOn) -> {kTemperature, +1};
/// (kWindow, kOpen) -> {kTemperature, -1} (outside air) and {kContact, 0}.
struct EnvEffect {
  Channel channel = Channel::kNone;
  int direction = 0;
  /// True for effects that manifest over a long horizon (temperature,
  /// humidity drift) as opposed to instantaneous state changes. Drives the
  /// "action ablation" long-term threat semantics.
  bool slow = false;
};

/// All environmental effects of (device, command); may be empty.
std::vector<EnvEffect> EffectsOf(DeviceType d, Command cmd);

/// The channel on which a device's *state change itself* is observable
/// (e.g. window -> kContact, lock -> kLockState, light -> kIlluminance).
Channel StateChannelOf(DeviceType d);

/// The channel a sensor device observes (kNone for actuators).
Channel SensedChannelOf(DeviceType d);

/// True for sensor-style devices (they trigger, are not commanded).
bool IsSensor(DeviceType d);

}  // namespace glint::rules
