#pragma once

#include <functional>
#include <vector>

#include "ml/classifier.h"
#include "ml/metrics.h"

namespace glint::ml {

/// Index sets for one cross-validation fold.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffled k-fold split of `n` samples.
std::vector<Fold> KFoldSplit(size_t n, int k, Rng* rng);

/// Runs k-fold cross validation: for each fold, builds a fresh classifier
/// via `factory`, trains with balanced class weights, and evaluates.
/// Returns one Metrics per fold (the distribution behind Fig. 6's boxes).
std::vector<Metrics> CrossValidate(
    const Dataset& data, int k,
    const std::function<std::unique_ptr<Classifier>()>& factory, Rng* rng);

/// Exhaustive grid search: evaluates `factories` by mean CV F1 and returns
/// the index of the best configuration.
size_t GridSearch(
    const Dataset& data, int k,
    const std::vector<std::function<std::unique_ptr<Classifier>()>>& factories,
    Rng* rng);

}  // namespace glint::ml
