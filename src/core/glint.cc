#include "core/glint.h"

namespace glint::core {

Glint::Glint(Options options)
    : detector_(std::make_unique<TrainedDetector>(std::move(options))) {}

void Glint::PrepareBuilder() {
  const auto& opts = detector_->options();
  if (opts.use_learned_correlation && detector_->has_discovery() &&
      detector_->discovery().trained()) {
    // Deliberately uncached: the façade measures/exercises the cold
    // pipeline; memoized serving lives in DeploymentSession.
    const TrainedDetector* d = detector_.get();
    detector_->builder()->set_edge_predicate(
        [d](const rules::Rule& a, const rules::Rule& b) {
          return d->discovery().Correlated(a, b);
        });
  }
}

graph::InteractionGraph Glint::BuildGraph(
    const std::vector<rules::Rule>& deployed) {
  PrepareBuilder();
  return detector_->builder()->BuildFromRules(deployed);
}

ThreatWarning Glint::Inspect(const std::vector<rules::Rule>& deployed,
                             const graph::EventLog& log, double now_hours) {
  PrepareBuilder();
  graph::InteractionGraph g =
      detector_->builder()->BuildRealTime(deployed, log, now_hours);
  return detector_->AnalyzeGraph(g);
}

ThreatWarning Glint::InspectGraph(const graph::InteractionGraph& g) {
  return detector_->AnalyzeGraph(g);
}

}  // namespace glint::core
