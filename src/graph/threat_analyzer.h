#pragma once

#include <vector>

#include "graph/interaction_graph.h"

namespace glint::graph {

/// One detected threat instance: its type and the culprit node indices.
struct ThreatFinding {
  ThreatType type = ThreatType::kNone;
  std::vector<int> nodes;
};

/// Executable encoding of the paper's labeling criteria (Sec. 4.2): the six
/// classic interactive-threat types used by the volunteer labelers, plus
/// detectors for the four *new* types of Sec. 4.7 (used to validate what
/// drifting-sample analysis surfaces; they are NOT part of dataset labels,
/// mirroring the paper where they were unknown at labeling time).
class ThreatAnalyzer {
 public:
  /// Runs the six classic detectors and returns all findings.
  static std::vector<ThreatFinding> DetectClassic(const InteractionGraph& g);

  /// Runs the four new-type detectors.
  static std::vector<ThreatFinding> DetectNewTypes(const InteractionGraph& g);

  /// Labels the graph in place: vulnerable = any classic finding; also
  /// records the threat types and culprit nodes.
  static void Label(InteractionGraph* g);

  // Individual classic detectors (exposed for unit tests).
  static std::vector<ThreatFinding> DetectConditionBypass(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectConditionBlock(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectActionRevert(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectActionConflict(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectActionLoop(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectGoalConflict(
      const InteractionGraph& g);

  // New-type detectors.
  static std::vector<ThreatFinding> DetectActionBlock(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectActionAblation(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectTriggerIntake(
      const InteractionGraph& g);
  static std::vector<ThreatFinding> DetectConditionDuplicate(
      const InteractionGraph& g);
};

}  // namespace glint::graph
