#include <gtest/gtest.h>

#include <algorithm>

#include "nlp/dep_parser.h"
#include "nlp/pos_tagger.h"

namespace glint::nlp {
namespace {

bool Has(const std::vector<std::string>& v, const std::string& w) {
  return std::find(v.begin(), v.end(), w) != v.end();
}

// ---------------------------------------------------------------------------
// POS tagger
// ---------------------------------------------------------------------------

TEST(PosTagger, Figure4Example) {
  // "Turn on light if the door opens" — VERB ... NOUN SCONJ DET NOUN VERB.
  auto tagged = PosTagger::TagSentence("Turn on light if the door opens");
  ASSERT_EQ(tagged.size(), 6u);
  EXPECT_EQ(tagged[0].text, "turn_on");
  EXPECT_EQ(tagged[0].pos, Pos::kVerb);
  EXPECT_EQ(tagged[1].pos, Pos::kNoun);        // light
  EXPECT_EQ(tagged[2].pos, Pos::kSconj);       // if
  EXPECT_EQ(tagged[3].pos, Pos::kDeterminer);  // the
  EXPECT_EQ(tagged[4].pos, Pos::kNoun);        // door
}

TEST(PosTagger, SuffixRules) {
  auto tagged = PosTagger::TagSentence("the gizmo is slowly whirring");
  // "whirring" unknown -> -ing suffix -> VERB; "slowly" -> ADV.
  EXPECT_EQ(tagged.back().pos, Pos::kVerb);
  bool adv = false;
  for (const auto& t : tagged) adv |= t.pos == Pos::kAdverb;
  EXPECT_TRUE(adv);
}

TEST(PosTagger, NumbersTagged) {
  auto tagged = PosTagger::TagSentence("above 85 degrees");
  EXPECT_EQ(tagged[1].pos, Pos::kNumber);
}

TEST(PosTagger, BrandTaggedProperNoun) {
  auto tagged = PosTagger::TagSentence("the wyze camera");
  EXPECT_EQ(tagged[1].pos, Pos::kProperNoun);
}

TEST(ExtractNounsVerbsTest, DiscardsNamedEntitiesAndStopwords) {
  auto tagged = PosTagger::TagSentence("the wyze camera captures the door");
  auto nv = ExtractNounsVerbs(tagged);
  EXPECT_TRUE(Has(nv.nouns, "camera"));
  EXPECT_TRUE(Has(nv.nouns, "door"));
  EXPECT_FALSE(Has(nv.nouns, "wyze"));
  EXPECT_FALSE(Has(nv.nouns, "the"));
}

// ---------------------------------------------------------------------------
// Dependency parser
// ---------------------------------------------------------------------------

TEST(DepParser, IftttTriggerActionSplit) {
  auto parsed =
      DepParser::Parse("If the smoke alarm is beeping, then open the window.");
  ASSERT_TRUE(parsed.has_trigger);
  const Clause* trigger = parsed.trigger();
  ASSERT_NE(trigger, nullptr);
  EXPECT_TRUE(Has(trigger->nouns, "smoke_alarm"));
  auto actions = parsed.actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0]->root_verb, "open");
  EXPECT_TRUE(Has(actions[0]->objects, "window"));
}

TEST(DepParser, ActionFirstSentence) {
  auto parsed = DepParser::Parse("Turn off lights if playing movies.");
  ASSERT_TRUE(parsed.has_trigger);
  const Clause* trigger = parsed.trigger();
  EXPECT_TRUE(Has(trigger->verbs, "playing"));
  auto actions = parsed.actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0]->root_verb, "turn_off");
  EXPECT_TRUE(Has(actions[0]->objects, "lights"));
}

TEST(DepParser, ImperativeWithoutTrigger) {
  auto parsed = DepParser::Parse("Lock the door.");
  EXPECT_FALSE(parsed.has_trigger);
  auto actions = parsed.actions();
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0]->root_verb, "lock");
}

TEST(DepParser, MultiActionConjunction) {
  auto parsed = DepParser::Parse(
      "If the smoke alarm is beeping, then open the window and unlock the "
      "door.");
  ASSERT_TRUE(parsed.has_trigger);
  auto actions = parsed.actions();
  ASSERT_GE(actions.size(), 1u);
  // "and" does not split the clause; both verbs are in one action clause.
  std::vector<std::string> all_verbs;
  for (const auto* a : actions) {
    all_verbs.insert(all_verbs.end(), a->verbs.begin(), a->verbs.end());
  }
  EXPECT_TRUE(Has(all_verbs, "open"));
  EXPECT_TRUE(Has(all_verbs, "unlock"));
}

TEST(DepParser, WhenClause) {
  auto parsed =
      DepParser::Parse("When humidity is below 30 percent, turn on "
                       "humidifier.");
  ASSERT_TRUE(parsed.has_trigger);
  EXPECT_TRUE(Has(parsed.trigger()->nouns, "humidity"));
}

TEST(DepParser, ModifiersCaptured) {
  auto parsed = DepParser::Parse("If the outdoor temperature is high, open "
                                 "windows.");
  ASSERT_TRUE(parsed.has_trigger);
  EXPECT_TRUE(Has(parsed.trigger()->modifiers, "outdoor") ||
              Has(parsed.trigger()->modifiers, "high"));
}

TEST(DepParser, AlexaVoiceStyle) {
  auto parsed = DepParser::Parse("Alexa, play movies.");
  auto actions = parsed.actions();
  ASSERT_GE(actions.size(), 1u);
  EXPECT_TRUE(Has(actions[0]->verbs, "play"));
}

TEST(DepParser, EmptyInputSafe) {
  auto parsed = DepParser::Parse("");
  EXPECT_TRUE(parsed.clauses.empty());
  EXPECT_TRUE(parsed.actions().empty());
  EXPECT_EQ(parsed.trigger(), nullptr);
}

}  // namespace
}  // namespace glint::nlp
