// Online-stage demo (the paper's Fig. 3 experience in a terminal): a
// simulated smart home streams event logs into a durable ServingEngine,
// which maintains the interaction graph incrementally — each rule embedded
// once, pairwise correlations evaluated once, edge liveness updated in
// place — checks for drift, and raises threat warnings with the culprit
// rules highlighted, including when an attacker strikes. At the end the
// user retires a culprit rule (an O(n) delta, not a rebuild), re-inspects,
// and the engine's state survives a simulated restart: a second engine
// recovers from the write-ahead log + snapshot and renders the identical
// warning.
//
// Every input that would come from an untrusted frontend in production
// (home indices, inspection times) goes through the validating Try* API —
// a bad index is a Status, never an abort.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/glint.h"
#include "core/serving.h"
#include "testbed/attacks.h"
#include "testbed/scenarios.h"

using namespace glint;  // NOLINT

int main() {
  std::printf("== Glint home monitor ==\n\n");

  core::Glint::Options options;
  options.corpus.ifttt = 500;
  options.corpus.smartthings = 80;
  options.corpus.alexa = 150;
  options.corpus.google_assistant = 80;
  options.corpus.home_assistant = 80;
  options.num_training_graphs = 600;
  options.builder.max_nodes = 10;
  options.builder.size_skew = 2.0;
  options.model.num_scales = 2;
  options.model.embed_dim = 64;
  options.train.epochs = 14;
  options.train.oversample_factor = 2.5;
  options.pairs.num_positive = 200;
  options.pairs.num_negative = 300;
  core::Glint glint(options);
  std::printf("training the public detector model (offline stage)...\n\n");
  glint.TrainOffline();

  // A house with the benign deployment plus the smoke-unlock / night-lock
  // pair (the settings 8/9 action conflict, latent until smoke).
  auto deployed = testbed::ScenarioGenerator::BenignDeployment();
  {
    rules::Rule smoke_unlock;
    smoke_unlock.id = 100;
    smoke_unlock.platform = rules::Platform::kSmartThings;
    smoke_unlock.trigger.device = rules::DeviceType::kSmokeAlarm;
    smoke_unlock.trigger.channel = rules::Channel::kSmoke;
    smoke_unlock.trigger.cmp = rules::Comparator::kEquals;
    smoke_unlock.trigger.state = "beeping";
    smoke_unlock.actions.push_back(
        {rules::DeviceType::kLock, rules::Command::kUnlock, 0});
    smoke_unlock.text = "If smoke is detected, unlock the door.";
    deployed.push_back(smoke_unlock);

    rules::Rule night_lock;
    night_lock.id = 101;
    night_lock.platform = rules::Platform::kAlexa;
    night_lock.trigger.channel = rules::Channel::kTime;
    night_lock.trigger.cmp = rules::Comparator::kEquals;
    night_lock.trigger.has_time = true;
    night_lock.trigger.hour_lo = 22;
    night_lock.trigger.hour_hi = 22;
    night_lock.actions.push_back(
        {rules::DeviceType::kLock, rules::Command::kLock, 0});
    night_lock.text = "Lock the door at 10 pm every day.";
    deployed.push_back(night_lock);
  }

  // A durable serving engine: every mutation is journaled to the state dir
  // before it is applied, so a crash at any point loses at most the final
  // in-flight operation.
  char state_dir[] = "/tmp/glint_monitor_XXXXXX";
  if (mkdtemp(state_dir) == nullptr) {
    std::fprintf(stderr, "cannot create state dir\n");
    return 1;
  }
  core::ServingEngine engine(&glint.detector());
  if (Status st = engine.Recover(state_dir); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Result<int> added = engine.TryAddHome(deployed);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  const int h = added.value();
  // home_view, not home(h): the engine is durable, and the mutable
  // accessor refuses to hand out a session the WAL could not see.
  std::printf("deployed %d rules into home %d (journal: %s)\n\n",
              engine.home_view(h).num_rules(), h, state_dir);

  // The validating API turns a frontend's bad home index into a Status
  // instead of a crash:
  graph::Event bogus;
  Status bad = engine.TryOnEvent(42, bogus);
  std::printf("routing an event to unknown home 42: %s\n\n",
              bad.ToString().c_str());

  testbed::SmartHome::Config home_cfg;
  home_cfg.seed = 2026;
  home_cfg.start_hour = 18.0;
  testbed::SmartHome home(home_cfg, deployed);
  size_t cursor = 0;  // events already streamed into the engine

  Rng rng(7);
  const struct {
    double until_hour;
    testbed::AttackType attack;
    const char* note;
  } timeline[] = {
      {20.0, testbed::AttackType::kNone, "normal evening"},
      {21.0, testbed::AttackType::kNone, "normal evening"},
      {22.3, testbed::AttackType::kFakeEvent,
       "ATTACK: forged smoke alarm report after the 10 pm lock"},
      {23.0, testbed::AttackType::kNone, "post-attack"},
  };

  for (const auto& step : timeline) {
    home.Simulate(step.until_hour - home.now());
    if (step.attack != testbed::AttackType::kNone) {
      testbed::ApplyAttack(step.attack, &home, &rng);
    }
    std::printf("---- %s (t = %.1f h) ----\n", step.note, home.now());

    // Show the tail of the event log (Fig. 3b).
    auto lines = home.log().Render();
    const size_t start = lines.size() > 5 ? lines.size() - 5 : 0;
    for (size_t i = start; i < lines.size(); ++i) {
      std::printf("  %s\n", lines[i].c_str());
    }

    // Stream the new events, then inspect incrementally (Fig. 3a/3c).
    const auto& events = home.log().events();
    for (; cursor < events.size(); ++cursor) {
      if (Status st = engine.TryOnEvent(h, events[cursor]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    auto warning = engine.TryInspect(h, home.now());
    if (!warning.ok()) {
      std::fprintf(stderr, "%s\n", warning.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", warning.value().Render().c_str());
  }

  // Steps 7-8 of Fig. 2, the remediation: the user retires the smoke-unlock
  // rule. One O(n) delta on the live graph — no rebuild — and the threat
  // chain is gone at the next inspection.
  std::printf("---- user retires rule #100 (smoke -> unlock) ----\n");
  bool removed = false;
  if (Status st = engine.TryRemoveRule(h, 100, &removed); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto after = engine.TryInspect(h, home.now());
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", after.value().Render().c_str());

  // Simulated restart: snapshot, then recover a *fresh* engine from the
  // state dir and verify it renders the identical warning — the crash-safe
  // serving guarantee end to end.
  std::printf("---- simulated restart: recovering from %s ----\n", state_dir);
  if (Status st = engine.Snapshot(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  core::ServingEngine recovered(&glint.detector());
  if (Status st = recovered.Recover(state_dir); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto again = recovered.TryInspect(h, home.now());
  if (!again.ok()) {
    std::fprintf(stderr, "%s\n", again.status().ToString().c_str());
    return 1;
  }
  const bool identical =
      again.value().Render() == after.value().Render();
  std::printf("recovered %zu home(s), seq=%llu; warning identical: %s\n",
              recovered.num_homes(),
              static_cast<unsigned long long>(recovered.journal_seq()),
              identical ? "yes" : "NO (bug!)");

  const auto stats = engine.AggregateStats();
  std::printf(
      "session stats: %llu inspections, %llu verdict-cache hits, "
      "%llu tensor-cache hits\n",
      static_cast<unsigned long long>(stats.inspects),
      static_cast<unsigned long long>(stats.verdict_hits),
      static_cast<unsigned long long>(stats.tensor_hits));
  return identical ? 0 : 1;
}
