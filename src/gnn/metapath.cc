#include "gnn/metapath.h"

namespace glint::gnn {

MetapathConverter::MetapathConverter(Config config, Rng* rng)
    : config_(config) {
  for (int t = 0; t < kNumNodeTypes; ++t) {
    proj_[t] = Linear(kTypeDims[t], config_.hidden, rng);
    intra_[t] = Linear((config_.use_hadamard ? 3 : 2) * config_.hidden,
                       config_.hidden, rng);
  }
  self_ = Linear(config_.hidden, config_.hidden, rng);
  attention_ = SemanticAttention(config_.hidden, kNumNodeTypes + 1, rng);
}

Tensor* MetapathConverter::Forward(Tape* t, const GnnGraph& g) {
  return ForwardImpl(t, g, nullptr);
}

Tensor* MetapathConverter::ForwardBatched(Tape* t, const GnnGraph& g,
                                          const std::vector<int>& offsets) {
  return ForwardImpl(t, g, &offsets);
}

Tensor* MetapathConverter::ForwardImpl(Tape* t, const GnnGraph& g,
                                       const std::vector<int>* offsets) {
  // Scatter permutation and type-mean operators are graph-derived and
  // cached on the graph (built once, shared by every forward).
  const auto meta = g.TypeMetaView();

  // 1. Project each type block, then scatter back to original node order.
  Tensor* blocks = nullptr;
  for (int type = 0; type < kNumNodeTypes; ++type) {
    if (g.type_rows[type].empty()) continue;
    Tensor* projected =
        proj_[type].Forward(t, t->Constant(g.typed_features[type]));
    blocks = blocks == nullptr ? projected : ConcatRows(t, blocks, projected);
  }
  Tensor* h = GatherRows(t, blocks, meta->perm);  // n x hidden, node order

  if (!config_.use_intra && !config_.use_inter) {
    // Full ablation: plain projected features.
    return h;
  }

  // 2. Intra-metapath aggregation: one metapath per neighbour type. The
  // type-restricted mean-neighbour operator is a fixed sparse matrix.
  std::vector<Tensor*> paths;
  paths.push_back(Relu(t, self_.Forward(t, h)));
  if (config_.use_intra) {
    for (int type = 0; type < kNumNodeTypes; ++type) {
      Tensor* agg = SpMM(t, meta->type_mean[type], h);
      // Concat self, neighbour mean, and (optionally) their Hadamard
      // product — the multiplicative term lets a linear detector express
      // "my rule and a neighbour touch the same device with opposing
      // commands", which additive aggregation cannot represent.
      Tensor* both = ConcatCols(t, h, agg);
      if (config_.use_hadamard) {
        both = ConcatCols(t, both, Mul(t, h, agg));
      }
      paths.push_back(Relu(t, intra_[type].Forward(t, both)));
    }
  }

  // 3. Inter-metapath aggregation: semantic attention (or plain mean when
  // ablated). Attention is the only stage that reduces over rows, so it is
  // the only stage with a batched flavour.
  if (config_.use_inter) {
    return offsets == nullptr ? attention_.Forward(t, paths)
                              : attention_.ForwardBatched(t, paths, *offsets);
  }
  Tensor* sum = nullptr;
  for (Tensor* p : paths) sum = AddLoss(t, sum, p);
  return Scale(t, sum, 1.0f / static_cast<float>(paths.size()));
}

std::vector<Parameter*> MetapathConverter::Parameters() {
  std::vector<Parameter*> out;
  auto add = [&](std::vector<Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  for (int i = 0; i < kNumNodeTypes; ++i) add(proj_[i].Parameters());
  for (int i = 0; i < kNumNodeTypes; ++i) add(intra_[i].Parameters());
  add(self_.Parameters());
  add(attention_.Parameters());
  return out;
}

void MetapathConverter::SetFrozen(bool f) {
  for (int i = 0; i < kNumNodeTypes; ++i) proj_[i].SetFrozen(f);
  for (int i = 0; i < kNumNodeTypes; ++i) intra_[i].SetFrozen(f);
  self_.SetFrozen(f);
  attention_.SetFrozen(f);
}

}  // namespace glint::gnn
