#pragma once

#include "gnn/layers.h"

namespace glint::gnn {

/// Metapath-based node transformation (Algorithm 2 lines 1-13, the
/// MAGNN-inspired front end): projects each node type's features into a
/// shared space, aggregates intra-metapath neighbourhoods per node type,
/// applies inter-metapath semantic attention, and returns a homogeneous
/// node matrix in original node order.
class MetapathConverter {
 public:
  struct Config {
    int hidden = 64;
    bool use_intra = true;  ///< ablation: intra-metapath aggregation
    bool use_inter = true;  ///< ablation: inter-metapath attention
    /// Ablation: include the Hadamard self-neighbour interaction term in
    /// the intra-metapath transform (DESIGN.md "Hadamard interaction").
    bool use_hadamard = true;
  };

  MetapathConverter() = default;
  MetapathConverter(Config config, Rng* rng);

  /// Returns an n x hidden homogeneous node-feature tensor.
  Tensor* Forward(Tape* t, const GnnGraph& g);

  /// Batched twin over a block-diagonal GnnBatch graph: projection,
  /// scatter and intra-metapath aggregation are row-local (the batch's
  /// type-mean operators never cross segments), so only the inter-metapath
  /// attention needs the segment table. Segment b of the result is
  /// bit-identical to Forward on that member graph.
  Tensor* ForwardBatched(Tape* t, const GnnGraph& g,
                         const std::vector<int>& offsets);

  std::vector<Parameter*> Parameters();
  void SetFrozen(bool f);

 private:
  /// Shared body: `offsets` selects the attention flavour (nullptr =
  /// whole-matrix, non-null = per-segment).
  Tensor* ForwardImpl(Tape* t, const GnnGraph& g,
                      const std::vector<int>* offsets);

  Config config_;
  Linear proj_[kNumNodeTypes];     ///< per-type feature projection
  Linear intra_[kNumNodeTypes];    ///< per-metapath transformation
  Linear self_;                    ///< self-path transformation
  SemanticAttention attention_;
};

}  // namespace glint::gnn
