#pragma once

#include <cstddef>
#include <cstdint>

namespace glint::util {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum used by the WAL / snapshot formats (the same choice as LevelDB,
/// RocksDB, and ext4 metadata: better error-detection properties than
/// CRC-32/zlib for short records, and hardware-accelerated on most CPUs,
/// though this implementation is portable table-driven software).
///
/// `Crc32c(data, n)` computes the checksum of one buffer;
/// `Crc32cExtend(crc, data, n)` continues a running checksum so a record
/// can be checksummed in pieces.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace glint::util
