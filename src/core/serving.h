#pragma once

#include <memory>
#include <vector>

#include "core/session.h"

namespace glint::core {

/// Multiplexes many DeploymentSessions (homes) over one shared
/// TrainedDetector — the "one detector, N homes" serving shape of the
/// ROADMAP's production target. Event ingestion is addressed per home;
/// InspectAll fans the per-home inspections out over the global ThreadPool.
///
/// Determinism: sessions are independent (each mutates only its own state;
/// the detector's memo caches store pure-function results), so InspectAll
/// returns bit-identical warnings for any thread count, in home order.
class ServingEngine {
 public:
  struct Config {
    DeploymentSession::Config session;
  };

  explicit ServingEngine(const TrainedDetector* detector,
                         Config config = Config());

  /// Registers a home with its deployed rules; returns the home index.
  int AddHome(const std::vector<rules::Rule>& deployed);

  size_t num_homes() const { return sessions_.size(); }
  DeploymentSession& home(int h);
  const DeploymentSession& home(int h) const;

  /// Routes one event to a home's session.
  void OnEvent(int h, const graph::Event& e);

  /// Inspects every home at `now` in parallel; result i belongs to home i.
  std::vector<ThreatWarning> InspectAll(double now_hours);

  /// Total rules deployed across all homes.
  size_t total_rules() const;

 private:
  const TrainedDetector* detector_;
  Config config_;
  /// unique_ptr for stable addresses across AddHome growth.
  std::vector<std::unique_ptr<DeploymentSession>> sessions_;
};

}  // namespace glint::core
