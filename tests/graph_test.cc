#include <gtest/gtest.h>

#include <cstdio>

#include "graph/builder.h"
#include "graph/dataset_store.h"
#include "graph/threat_analyzer.h"
#include "nlp/embedding.h"
#include "rules/corpus.h"

namespace glint::graph {
namespace {

using rules::ActionSpec;
using rules::Channel;
using rules::Command;
using rules::Comparator;
using rules::ConditionSpec;
using rules::DeviceType;
using rules::Location;
using rules::Platform;
using rules::Rule;
using rules::TriggerSpec;

Rule QuickRule(int id, Platform p, TriggerSpec t,
               std::vector<ActionSpec> actions,
               Location loc = Location::kAny) {
  Rule r;
  r.id = id;
  r.platform = p;
  r.location = loc;
  r.trigger = t;
  r.actions = std::move(actions);
  r.text = "synthetic rule";
  return r;
}

TriggerSpec StateTrig(DeviceType d, const char* state) {
  TriggerSpec t;
  t.device = d;
  t.channel = rules::StateChannelOf(d);
  t.cmp = Comparator::kEquals;
  t.state = state;
  return t;
}

TriggerSpec NumTrig(Channel ch, Comparator cmp, double lo) {
  TriggerSpec t;
  t.channel = ch;
  t.device = ch == Channel::kTemperature ? DeviceType::kTemperatureSensor
                                         : DeviceType::kHumiditySensor;
  t.cmp = cmp;
  t.lo = lo;
  return t;
}

TriggerSpec TimeTrig(int hour) {
  TriggerSpec t;
  t.channel = Channel::kTime;
  t.cmp = Comparator::kEquals;
  t.has_time = true;
  t.hour_lo = hour;
  t.hour_hi = hour;
  return t;
}

InteractionGraph GraphOf(const std::vector<Rule>& rs) {
  InteractionGraph g;
  for (const auto& r : rs) {
    Node n;
    n.rule = r;
    n.type = NodeTypeOf(r.platform);
    n.features.assign(n.type == 1 ? 512 : 300, 0.1f);
    g.AddNode(std::move(n));
  }
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j = 0; j < g.num_nodes(); ++j) {
      if (i != j && rules::RuleTriggersRule(rs[static_cast<size_t>(i)],
                                            rs[static_cast<size_t>(j)])) {
        g.AddEdge(i, j);
      }
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// InteractionGraph structure
// ---------------------------------------------------------------------------

TEST(InteractionGraphTest, EdgesAndNeighbors) {
  InteractionGraph g;
  for (int i = 0; i < 3; ++i) {
    Node n;
    n.features = {1.f};
    g.AddNode(n);
  }
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 1);  // duplicate ignored
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1);
  ASSERT_EQ(g.InNeighbors(2).size(), 1u);
}

TEST(InteractionGraphTest, WeakConnectivity) {
  InteractionGraph g;
  for (int i = 0; i < 3; ++i) {
    Node n;
    g.AddNode(n);
  }
  EXPECT_FALSE(g.IsWeaklyConnected());
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);  // direction irrelevant for weak connectivity
  EXPECT_TRUE(g.IsWeaklyConnected());
}

TEST(InteractionGraphTest, HeterogeneityFromNodeTypes) {
  InteractionGraph g;
  Node text;
  text.type = 0;
  Node voice;
  voice.type = 1;
  g.AddNode(text);
  EXPECT_FALSE(g.IsHeterogeneous());
  g.AddNode(voice);
  EXPECT_TRUE(g.IsHeterogeneous());
}

TEST(InteractionGraphTest, NodeTypeByPlatform) {
  EXPECT_EQ(NodeTypeOf(Platform::kIFTTT), 0);
  EXPECT_EQ(NodeTypeOf(Platform::kSmartThings), 0);
  EXPECT_EQ(NodeTypeOf(Platform::kHomeAssistant), 0);
  EXPECT_EQ(NodeTypeOf(Platform::kAlexa), 1);
  EXPECT_EQ(NodeTypeOf(Platform::kGoogleAssistant), 1);
}

// ---------------------------------------------------------------------------
// ThreatAnalyzer — one focused test per threat type
// ---------------------------------------------------------------------------

TEST(ThreatAnalyzer, ActionConflictDetected) {
  // Settings 8/9: smoke unlock vs nightly lock.
  auto g = GraphOf({
      QuickRule(1, Platform::kSmartThings,
                StateTrig(DeviceType::kSmokeAlarm, "beeping"),
                {{DeviceType::kLock, Command::kUnlock, 0}}),
      QuickRule(2, Platform::kAlexa, TimeTrig(22),
                {{DeviceType::kLock, Command::kLock, 0}}),
  });
  auto findings = ThreatAnalyzer::DetectActionConflict(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kActionConflict);
}

TEST(ThreatAnalyzer, DisjointNumericRangesDoNotConflict) {
  // Table 1 rules 2 & 3: open in [65,80], close below 60 — fine.
  TriggerSpec between;
  between.channel = Channel::kTemperature;
  between.device = DeviceType::kTemperatureSensor;
  between.cmp = Comparator::kBetween;
  between.lo = 65;
  between.hi = 80;
  auto g = GraphOf({
      QuickRule(1, Platform::kSmartThings, between,
                {{DeviceType::kWindow, Command::kOpen, 0}}),
      QuickRule(2, Platform::kSmartThings,
                NumTrig(Channel::kTemperature, Comparator::kBelow, 60),
                {{DeviceType::kWindow, Command::kClose, 0}}),
  });
  EXPECT_TRUE(ThreatAnalyzer::DetectActionConflict(g).empty());
}

TEST(ThreatAnalyzer, DisjointTimeWindowsDoNotConflict) {
  auto g = GraphOf({
      QuickRule(1, Platform::kIFTTT, TimeTrig(8),
                {{DeviceType::kBlind, Command::kOpen, 0}}),
      QuickRule(2, Platform::kIFTTT, TimeTrig(22),
                {{DeviceType::kBlind, Command::kClose, 0}}),
  });
  EXPECT_TRUE(ThreatAnalyzer::DetectActionConflict(g).empty());
}

TEST(ThreatAnalyzer, DifferentRoomsDoNotConflict) {
  auto g = GraphOf({
      QuickRule(1, Platform::kIFTTT,
                StateTrig(DeviceType::kMotionSensor, "active"),
                {{DeviceType::kLight, Command::kOn, 0}}, Location::kKitchen),
      QuickRule(2, Platform::kIFTTT, StateTrig(DeviceType::kTv, "playing"),
                {{DeviceType::kLight, Command::kOff, 0}}, Location::kBedroom),
  });
  EXPECT_TRUE(ThreatAnalyzer::DetectActionConflict(g).empty());
}

TEST(ThreatAnalyzer, ActionRevertDetected) {
  // Settings 6/7: AC on (temp>100) then humidity rule turns AC off.
  auto g = GraphOf({
      QuickRule(1, Platform::kAlexa,
                NumTrig(Channel::kTemperature, Comparator::kAbove, 100),
                {{DeviceType::kAc, Command::kOn, 0}}),
      QuickRule(2, Platform::kIFTTT,
                NumTrig(Channel::kHumidity, Comparator::kBelow, 30),
                {{DeviceType::kHumidifier, Command::kOn, 0},
                 {DeviceType::kAc, Command::kOff, 0}}),
  });
  auto findings = ThreatAnalyzer::DetectActionRevert(g);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kActionRevert);
}

TEST(ThreatAnalyzer, ActionLoopDetected) {
  // Settings 10/11: lights toggling each other.
  auto g = GraphOf({
      QuickRule(1, Platform::kIFTTT, StateTrig(DeviceType::kLight, "on"),
                {{DeviceType::kLight, Command::kOff, 0}}),
      QuickRule(2, Platform::kIFTTT, StateTrig(DeviceType::kLight, "off"),
                {{DeviceType::kLight, Command::kOn, 0}}),
  });
  auto findings = ThreatAnalyzer::DetectActionLoop(g);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kActionLoop);
  EXPECT_EQ(findings[0].nodes.size(), 2u);
}

TEST(ThreatAnalyzer, SlowEnvCycleIsNotLoop) {
  // Heater raises temp -> AC on (temp above) -> cools -> heater (temp
  // below): a slow oscillation, classified as revert territory, not loop.
  auto g = GraphOf({
      QuickRule(1, Platform::kIFTTT,
                NumTrig(Channel::kTemperature, Comparator::kBelow, 60),
                {{DeviceType::kHeater, Command::kOn, 0}}),
      QuickRule(2, Platform::kIFTTT,
                NumTrig(Channel::kTemperature, Comparator::kAbove, 80),
                {{DeviceType::kAc, Command::kOn, 0}}),
  });
  EXPECT_TRUE(ThreatAnalyzer::DetectActionLoop(g).empty());
}

TEST(ThreatAnalyzer, ConditionBypassDetected) {
  // Settings 1/2: fine-grained (time-gated) window rule bypassed by the
  // coarse rule.
  Rule fine = QuickRule(1, Platform::kSmartThings,
                        NumTrig(Channel::kTemperature, Comparator::kAbove, 70),
                        {{DeviceType::kWindow, Command::kOpen, 0}});
  ConditionSpec time_gate;
  time_gate.has_time = true;
  time_gate.hour_lo = 11;
  time_gate.hour_hi = 11;
  time_gate.channel = Channel::kTime;
  fine.conditions.push_back(time_gate);
  Rule coarse = QuickRule(
      2, Platform::kAlexa,
      NumTrig(Channel::kTemperature, Comparator::kAbove, 70),
      {{DeviceType::kWindow, Command::kOpen, 0}});
  auto g = GraphOf({fine, coarse});
  auto findings = ThreatAnalyzer::DetectConditionBypass(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kConditionBypass);
}

TEST(ThreatAnalyzer, ConditionBlockDetected) {
  // Settings 3/4: disarm action kills the armed-state condition.
  Rule guarded = QuickRule(1, Platform::kIFTTT,
                           StateTrig(DeviceType::kMotionSensor, "active"),
                           {{DeviceType::kPhone, Command::kNotify, 0}});
  ConditionSpec armed;
  armed.channel = Channel::kSecurity;
  armed.device = DeviceType::kSecuritySystem;
  armed.cmp = Comparator::kEquals;
  armed.state = "armed";
  guarded.conditions.push_back(armed);
  Rule blocker = QuickRule(2, Platform::kIFTTT,
                           StateTrig(DeviceType::kLight, "on"),
                           {{DeviceType::kSecuritySystem, Command::kDisarm, 0}});
  auto g = GraphOf({guarded, blocker});
  auto findings = ThreatAnalyzer::DetectConditionBlock(g);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kConditionBlock);
}

TEST(ThreatAnalyzer, GoalConflictDetected) {
  // Settings 12/13: heater on vs window open.
  auto g = GraphOf({
      QuickRule(1, Platform::kAlexa, TimeTrig(18),
                {{DeviceType::kHeater, Command::kOn, 0}}),
      QuickRule(2, Platform::kSmartThings,
                NumTrig(Channel::kTemperature, Comparator::kAbove, 80),
                {{DeviceType::kWindow, Command::kOpen, 0}}),
  });
  auto findings = ThreatAnalyzer::DetectGoalConflict(g);
  ASSERT_GE(findings.size(), 1u);
  EXPECT_EQ(findings[0].type, ThreatType::kGoalConflict);
}

TEST(ThreatAnalyzer, ReleasingCommandsAreNotGoalConflict) {
  // "heater off" vs "window open" both lower temperature-ish; turning a
  // device OFF is not an asserted goal.
  auto g = GraphOf({
      QuickRule(1, Platform::kAlexa, TimeTrig(18),
                {{DeviceType::kHeater, Command::kOff, 0}}),
      QuickRule(2, Platform::kAlexa, TimeTrig(19),
                {{DeviceType::kAc, Command::kOff, 0}}),
  });
  EXPECT_TRUE(ThreatAnalyzer::DetectGoalConflict(g).empty());
}

TEST(ThreatAnalyzer, NewTypesDetectedOnBlueprints) {
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  GraphBuilder builder({}, &wm, &sm);
  auto groups = rules::CorpusGenerator::NewThreatBlueprints();
  ASSERT_EQ(groups.size(), 4u);
  const ThreatType expected[] = {
      ThreatType::kActionBlock, ThreatType::kActionAblation,
      ThreatType::kTriggerIntake, ThreatType::kConditionDuplicate};
  for (size_t i = 0; i < groups.size(); ++i) {
    auto g = builder.BuildFromRules(groups[i]);
    auto findings = ThreatAnalyzer::DetectNewTypes(g);
    ASSERT_FALSE(findings.empty()) << "group " << i;
    bool found = false;
    for (const auto& f : findings) found |= f.type == expected[i];
    EXPECT_TRUE(found) << "group " << i;
  }
}

TEST(ThreatAnalyzer, LabelAggregatesTypesAndCulprits) {
  auto rules4 = rules::CorpusGenerator::Table4Settings();
  auto g = GraphOf(rules4);
  ThreatAnalyzer::Label(&g);
  EXPECT_TRUE(g.vulnerable());
  EXPECT_GE(g.threat_types().size(), 4u);
  EXPECT_FALSE(g.culprit_nodes().empty());
}

TEST(ThreatAnalyzer, BenignPairIsNormal) {
  auto g = GraphOf({
      QuickRule(1, Platform::kIFTTT,
                StateTrig(DeviceType::kMotionSensor, "active"),
                {{DeviceType::kLight, Command::kOn, 0}}),
      QuickRule(2, Platform::kIFTTT,
                StateTrig(DeviceType::kPresenceSensor, "away"),
                {{DeviceType::kLock, Command::kLock, 0}}),
  });
  ThreatAnalyzer::Label(&g);
  EXPECT_FALSE(g.vulnerable());
  EXPECT_TRUE(g.threat_types().empty());
}

// ---------------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------------

TEST(EventLogTest, KeepsChronologicalOrder) {
  EventLog log;
  Event a;
  a.time_hours = 2;
  Event b;
  b.time_hours = 1;
  log.Append(a);
  log.Append(b);  // out of order, gets inserted before
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.events()[0].time_hours, 1.0);
}

TEST(EventLogTest, WindowFilters) {
  EventLog log;
  for (int i = 0; i < 10; ++i) {
    Event e;
    e.time_hours = i;
    log.Append(e);
  }
  auto w = log.Window(9, 3);
  EXPECT_EQ(w.size(), 4u);  // hours 6..9
}

TEST(EventLogTest, StateAtTracksLatest) {
  EventLog log;
  Event e1;
  e1.time_hours = 1;
  e1.device = DeviceType::kDoor;
  e1.state = "open";
  Event e2;
  e2.time_hours = 2;
  e2.device = DeviceType::kDoor;
  e2.state = "closed";
  log.Append(e1);
  log.Append(e2);
  EXPECT_EQ(log.StateAt(DeviceType::kDoor, Location::kAny, 1.5), "open");
  EXPECT_EQ(log.StateAt(DeviceType::kDoor, Location::kAny, 3.0), "closed");
  EXPECT_EQ(log.StateAt(DeviceType::kWindow, Location::kAny, 3.0), "");
}

TEST(EventLogTest, EventFiresTriggerMatching) {
  Rule r = QuickRule(1, Platform::kIFTTT,
                     StateTrig(DeviceType::kMotionSensor, "active"),
                     {{DeviceType::kLight, Command::kOn, 0}});
  Event match;
  match.device = DeviceType::kMotionSensor;
  match.state = "active";
  EXPECT_TRUE(EventFiresTrigger(match, r));
  Event wrong_state = match;
  wrong_state.state = "inactive";
  EXPECT_FALSE(EventFiresTrigger(wrong_state, r));
}

TEST(EventLogTest, TimeTriggerFiresInWindow) {
  Rule r = QuickRule(1, Platform::kIFTTT, TimeTrig(21),
                     {{DeviceType::kVacuum, Command::kStartClean, 0}});
  Event e;
  e.time_hours = 21.5;
  e.device = DeviceType::kButton;
  EXPECT_TRUE(EventFiresTrigger(e, r));
  e.time_hours = 10.0;
  EXPECT_FALSE(EventFiresTrigger(e, r));
}

TEST(EventLogTest, RenderProducesTimestampedLines) {
  EventLog log;
  Event e;
  e.time_hours = 20.14;
  e.device = DeviceType::kDoor;
  e.state = "locked";
  e.platform = Platform::kAlexa;
  log.Append(e);
  auto lines = log.Render();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("door is locked (Alexa)"), std::string::npos);
  EXPECT_NE(lines[0].find("20:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// GraphBuilder
// ---------------------------------------------------------------------------

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() : wm_(300, 17), sm_(512, 18) {}
  nlp::EmbeddingModel wm_, sm_;
};

TEST_F(BuilderTest, SizeWithinBounds) {
  rules::CorpusConfig cc;
  cc.ifttt = 300;
  cc.smartthings = 0;
  cc.alexa = 0;
  cc.google_assistant = 0;
  cc.home_assistant = 0;
  auto corpus = rules::CorpusGenerator(cc).Generate();
  GraphBuilder::Config bc;
  bc.min_nodes = 2;
  bc.max_nodes = 20;
  GraphBuilder builder(bc, &wm_, &sm_);
  auto ds = builder.BuildDataset(corpus, 50);
  for (const auto& g : ds.graphs) {
    EXPECT_GE(g.num_nodes(), 2);
    EXPECT_LE(g.num_nodes(), 20);
  }
}

TEST_F(BuilderTest, EdgesMatchOracleWhenDeviceEdgesOff) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  GraphBuilder::Config bc;
  bc.device_edges = false;
  GraphBuilder builder(bc, &wm_, &sm_);
  auto g = builder.BuildFromRules(table1);
  for (const auto& e : g.edges()) {
    EXPECT_TRUE(rules::RuleTriggersRule(table1[static_cast<size_t>(e.src)],
                                        table1[static_cast<size_t>(e.dst)]));
  }
  // And Table 1 is vulnerable (the paper's running example threat).
  EXPECT_TRUE(g.vulnerable());
}

TEST_F(BuilderTest, DeviceEdgesLinkWindowRules) {
  // Fig. 1 shows rules 5 and 6 connected via the window device even though
  // neither triggers the other.
  auto table1 = rules::CorpusGenerator::Table1Rules();
  GraphBuilder builder({}, &wm_, &sm_);
  auto g = builder.BuildFromRules(table1);
  EXPECT_TRUE(g.HasEdge(4, 5));  // rule 5 <-> rule 6 (0-indexed 4, 5)
  EXPECT_TRUE(g.HasEdge(5, 4));
  EXPECT_FALSE(rules::RuleTriggersRule(table1[4], table1[5]));
}

TEST_F(BuilderTest, NodeFeatureDimsByPlatform) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  GraphBuilder builder({}, &wm_, &sm_);
  auto g = builder.BuildFromRules(table1);
  for (const auto& node : g.nodes()) {
    if (node.type == 1) {
      EXPECT_EQ(node.features.size(), 512u);
    } else {
      EXPECT_EQ(node.features.size(), 300u);
    }
  }
  EXPECT_TRUE(g.IsHeterogeneous());  // Alexa rule 9 is a voice node
}

TEST_F(BuilderTest, CustomEdgePredicateRespected) {
  auto table1 = rules::CorpusGenerator::Table1Rules();
  GraphBuilder::Config bc;
  bc.device_edges = false;
  GraphBuilder builder(bc, &wm_, &sm_);
  builder.set_edge_predicate(
      [](const Rule&, const Rule&) { return false; });
  auto g = builder.BuildFromRules(table1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST_F(BuilderTest, RealTimePruningDropsUnobservedEdges) {
  // Rule A (motion -> light on) and rule B (light on -> lock door). With an
  // event trace where the light never turned on, edge A->B must be pruned.
  std::vector<Rule> deployed = {
      QuickRule(1, Platform::kIFTTT,
                StateTrig(DeviceType::kMotionSensor, "active"),
                {{DeviceType::kLight, Command::kOn, 0}}),
      QuickRule(2, Platform::kAlexa, StateTrig(DeviceType::kLight, "on"),
                {{DeviceType::kLock, Command::kLock, 0}}),
  };
  GraphBuilder builder({}, &wm_, &sm_);
  // Static graph has the chain.
  auto full = builder.BuildFromRules(deployed);
  EXPECT_TRUE(full.HasEdge(0, 1));

  EventLog quiet;  // nothing happened
  auto rt_quiet = builder.BuildRealTime(deployed, quiet, 10.0);
  EXPECT_EQ(rt_quiet.num_edges(), 0);

  // Now the light actually turned on and the lock fired after it.
  EventLog active;
  Event light_on;
  light_on.time_hours = 9.0;
  light_on.device = DeviceType::kLight;
  light_on.state = "on";
  active.Append(light_on);
  auto rt_active = builder.BuildRealTime(deployed, active, 10.0);
  EXPECT_TRUE(rt_active.HasEdge(0, 1));
}

TEST_F(BuilderTest, RealTimeWindowRespectsTimestamps) {
  std::vector<Rule> deployed = {
      QuickRule(1, Platform::kIFTTT,
                StateTrig(DeviceType::kMotionSensor, "active"),
                {{DeviceType::kLight, Command::kOn, 0}}),
      QuickRule(2, Platform::kAlexa, StateTrig(DeviceType::kLight, "on"),
                {{DeviceType::kLock, Command::kLock, 0}}),
  };
  GraphBuilder builder({}, &wm_, &sm_);
  EventLog stale;
  Event light_on;
  light_on.time_hours = 1.0;  // far outside the 3h window ending at 10
  light_on.device = DeviceType::kLight;
  light_on.state = "on";
  stale.Append(light_on);
  auto rt = builder.BuildRealTime(deployed, stale, 10.0, 3.0);
  EXPECT_EQ(rt.num_edges(), 0);
}

// ---------------------------------------------------------------------------
// DatasetStore
// ---------------------------------------------------------------------------

TEST_F(BuilderTest, DatasetStoreRoundTrip) {
  rules::CorpusConfig cc;
  cc.ifttt = 200;
  cc.smartthings = 20;
  cc.alexa = 30;
  cc.google_assistant = 0;
  cc.home_assistant = 0;
  auto corpus = rules::CorpusGenerator(cc).Generate();
  GraphBuilder builder({}, &wm_, &sm_);
  auto ds = builder.BuildDataset(corpus, 20);

  const std::string path = "/tmp/glint_store_test.bin";
  ASSERT_TRUE(DatasetStore::Save(ds, path).ok());
  auto loaded = DatasetStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& ds2 = loaded.value();
  ASSERT_EQ(ds2.size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    const auto& a = ds.graphs[i];
    const auto& b = ds2.graphs[i];
    EXPECT_EQ(a.num_nodes(), b.num_nodes());
    EXPECT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.vulnerable(), b.vulnerable());
    EXPECT_EQ(a.threat_types().size(), b.threat_types().size());
    for (int v = 0; v < a.num_nodes(); ++v) {
      EXPECT_EQ(a.nodes()[static_cast<size_t>(v)].rule.text,
                b.nodes()[static_cast<size_t>(v)].rule.text);
      EXPECT_EQ(a.nodes()[static_cast<size_t>(v)].features,
                b.nodes()[static_cast<size_t>(v)].features);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetStoreTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/glint_store_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("not a dataset", f);
  fclose(f);
  auto r = DatasetStore::Load(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(DatasetStoreTest, LoadMissingFileFails) {
  auto r = DatasetStore::Load("/tmp/definitely_missing_glint.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(BuilderTest, SerializedBytesMatchesFileSize) {
  rules::CorpusConfig cc;
  cc.ifttt = 50;
  auto corpus = rules::CorpusGenerator(cc).Generate();
  GraphBuilder builder({}, &wm_, &sm_);
  auto ds = builder.BuildDataset(corpus, 5);
  const std::string path = "/tmp/glint_store_size.bin";
  ASSERT_TRUE(DatasetStore::Save(ds, path).ok());
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fclose(f);
  EXPECT_EQ(static_cast<size_t>(size), DatasetStore::SerializedBytes(ds));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace glint::graph
