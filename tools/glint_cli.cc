// glint — command-line interface to the Glint interactive-threat detection
// system.
//
// Subcommands:
//   generate-corpus --out FILE [--scale N] [--seed S]
//       Generate the 5-platform synthetic rule corpus as text (one rule per
//       line, tab-separated platform/id/text).
//   build-dataset --out FILE [--graphs N] [--platform P] [--seed S]
//       Build a labeled interaction-graph dataset and save it in the binary
//       store format.
//   dataset-info FILE
//       Print summary statistics of a stored dataset.
//   train --model-dir DIR [--graphs N] [--epochs E]
//       Run the offline stage and save the ITGNN-S / ITGNN-C models.
//   inspect --model-dir DIR [--demo table1|table4|blueprints]
//       Load trained models and inspect a rule deployment (demo rule sets).
//   serve [--model-dir DIR] [--homes N] [--hours H] [--inspect-every H]
//       Serve many simulated homes from one shared detector: per-home
//       DeploymentSessions ingest event streams and are inspected in
//       parallel by the ServingEngine (warm incremental pipeline).
//   simulate [--hours H] [--attack NAME] [--seed S]
//       Run the smart-home testbed simulator and print its event log.
//   analyze [--demo table1|table4|blueprints]
//       Run the rule-semantics threat analyzer (no ML) on a demo rule set.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/glint.h"
#include "core/serving.h"
#include "graph/dataset_store.h"
#include "graph/threat_analyzer.h"
#include "testbed/attacks.h"
#include "testbed/scenarios.h"
#include "util/string_utils.h"

using namespace glint;  // NOLINT

namespace {

// Minimal flag parser: --key value pairs after the subcommand.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flags[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : it->second;
}

std::vector<rules::Rule> DemoRules(const std::string& name) {
  if (name == "table4") return rules::CorpusGenerator::Table4Settings();
  if (name == "blueprints") {
    std::vector<rules::Rule> all;
    for (const auto& g : rules::CorpusGenerator::NewThreatBlueprints()) {
      all.insert(all.end(), g.begin(), g.end());
    }
    return all;
  }
  return rules::CorpusGenerator::Table1Rules();
}

core::Glint::Options DefaultOptions(int graphs, int epochs, uint64_t seed) {
  core::Glint::Options opts;
  opts.corpus.ifttt = 500;
  opts.corpus.smartthings = 80;
  opts.corpus.alexa = 150;
  opts.corpus.google_assistant = 80;
  opts.corpus.home_assistant = 80;
  opts.num_training_graphs = graphs;
  opts.builder.max_nodes = 10;
  opts.builder.size_skew = 2.0;
  opts.model.num_scales = 2;
  opts.model.embed_dim = 64;
  opts.train.epochs = epochs;
  opts.train.oversample_factor = 2.5;
  opts.pairs.num_positive = 200;
  opts.pairs.num_negative = 300;
  opts.seed = seed;
  return opts;
}

int CmdGenerateCorpus(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate-corpus requires --out FILE\n");
    return 2;
  }
  rules::CorpusConfig cc;
  const double scale = std::atof(FlagOr(flags, "scale", "1").c_str());
  cc.ifttt = static_cast<int>(cc.ifttt * scale);
  cc.alexa = static_cast<int>(cc.alexa * scale);
  cc.google_assistant = static_cast<int>(cc.google_assistant * scale);
  cc.seed = std::strtoull(FlagOr(flags, "seed", "4242").c_str(), nullptr, 10);
  auto corpus = rules::CorpusGenerator(cc).Generate();
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  for (const auto& r : corpus) {
    std::fprintf(f, "%s\t%d\t%s\n", rules::PlatformName(r.platform), r.id,
                 r.text.c_str());
  }
  std::fclose(f);
  std::printf("wrote %zu rules to %s\n", corpus.size(), out.c_str());
  return 0;
}

int CmdBuildDataset(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    std::fprintf(stderr, "build-dataset requires --out FILE\n");
    return 2;
  }
  const int n = std::atoi(FlagOr(flags, "graphs", "500").c_str());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1234").c_str(), nullptr, 10);
  const std::string platform = FlagOr(flags, "platform", "all");

  rules::CorpusConfig cc;
  auto corpus = rules::CorpusGenerator(cc).Generate();
  std::vector<rules::Rule> pool;
  if (platform == "all") {
    pool = corpus;
  } else {
    for (const auto& r : corpus) {
      if (platform == rules::PlatformName(r.platform)) pool.push_back(r);
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no rules for platform '%s'\n", platform.c_str());
    return 2;
  }
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder::Config bc;
  bc.seed = seed;
  graph::GraphBuilder builder(bc, &wm, &sm);
  auto ds = builder.BuildDataset(pool, n);
  Status st = graph::DatasetStore::Save(ds, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu graphs (%d vulnerable) to %s\n", ds.size(),
              ds.CountVulnerable(), out.c_str());
  return 0;
}

int CmdDatasetInfo(const std::string& path) {
  auto loaded = graph::DatasetStore::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& ds = loaded.value();
  double nodes = 0, edges = 0;
  int hetero = 0;
  std::map<std::string, int> type_counts;
  for (const auto& g : ds.graphs) {
    nodes += g.num_nodes();
    edges += g.num_edges();
    hetero += g.IsHeterogeneous();
    for (auto t : g.threat_types()) {
      type_counts[graph::ThreatTypeName(t)] += 1;
    }
  }
  std::printf("%s: %zu graphs, %d vulnerable (%.1f%%), %d heterogeneous\n",
              path.c_str(), ds.size(), ds.CountVulnerable(),
              100.0 * ds.CountVulnerable() / std::max<size_t>(1, ds.size()),
              hetero);
  std::printf("mean %.1f nodes, %.1f edges\n",
              nodes / std::max<size_t>(1, ds.size()),
              edges / std::max<size_t>(1, ds.size()));
  for (const auto& [name, count] : type_counts) {
    std::printf("  %-20s %d graphs\n", name.c_str(), count);
  }
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "model-dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "train requires --model-dir DIR\n");
    return 2;
  }
  const int graphs = std::atoi(FlagOr(flags, "graphs", "600").c_str());
  const int epochs = std::atoi(FlagOr(flags, "epochs", "14").c_str());
  core::Glint detector(DefaultOptions(graphs, epochs, 97));
  std::printf("training offline (%d graphs, %d epochs)...\n", graphs, epochs);
  detector.TrainOffline();
  Status st = detector.SaveModels(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved %s/itgnn_s.bin and %s/itgnn_c.bin\n", dir.c_str(),
              dir.c_str());
  return 0;
}

int CmdInspect(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "model-dir", "");
  core::Glint detector(DefaultOptions(600, 14, 97));
  if (!dir.empty()) {
    Status st = detector.LoadModels(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded models from %s\n", dir.c_str());
    std::printf("note: the correlation model is retrained (it is cheap)\n");
    // The loaded ITGNN needs the corpus-based builder for embeddings only;
    // retrain the light parts.
  } else {
    std::printf("no --model-dir given; training a fresh detector...\n");
  }
  if (dir.empty()) detector.TrainOffline();

  auto deployed = DemoRules(FlagOr(flags, "demo", "table1"));
  std::printf("inspecting %zu deployed rules...\n", deployed.size());
  nlp::EmbeddingModel wm(300, 97 ^ 0x17), sm(512, 97 ^ 0x18);
  auto g = detector.ready() && !dir.empty()
               ? graph::GraphBuilder({}, &wm, &sm).BuildFromRules(deployed)
               : detector.BuildGraph(deployed);
  auto warning = detector.InspectGraph(g);
  std::printf("%s\n", warning.Render().c_str());
  return 0;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  const int homes = std::atoi(FlagOr(flags, "homes", "4").c_str());
  const double hours = std::atof(FlagOr(flags, "hours", "6").c_str());
  const double every = std::atof(FlagOr(flags, "inspect-every", "1").c_str());
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "2026").c_str(), nullptr, 10);
  const std::string dir = FlagOr(flags, "model-dir", "");

  core::Glint detector(DefaultOptions(600, 14, 97));
  if (!dir.empty()) {
    Status st = detector.LoadModels(dir);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded models from %s\n", dir.c_str());
  } else {
    std::printf("no --model-dir given; training a fresh detector...\n");
    detector.TrainOffline();
  }

  // One detector, many homes: each home gets a DeploymentSession sharing
  // the trained models; events stream in and periodic InspectAll calls run
  // the warm incremental pipeline across the thread pool.
  core::ServingEngine engine(&detector.detector());
  std::vector<testbed::SmartHome> sims;
  std::vector<size_t> cursor(static_cast<size_t>(homes), 0);
  sims.reserve(static_cast<size_t>(homes));
  for (int h = 0; h < homes; ++h) {
    testbed::SmartHome::Config cfg;
    cfg.seed = seed + static_cast<uint64_t>(h);
    cfg.start_hour = 18.0;
    auto deployed = testbed::ScenarioGenerator::BenignDeployment();
    sims.emplace_back(cfg, deployed);
    engine.AddHome(deployed);
  }
  std::printf("serving %d homes, %zu rules total\n", homes,
              engine.total_rules());

  const double start = sims.empty() ? 18.0 : sims[0].now();
  for (double t = start + every; t <= start + hours + 1e-9; t += every) {
    for (int h = 0; h < homes; ++h) {
      auto& sim = sims[static_cast<size_t>(h)];
      sim.Simulate(t - sim.now());
      const auto& events = sim.log().events();
      for (size_t& i = cursor[static_cast<size_t>(h)]; i < events.size();
           ++i) {
        engine.OnEvent(h, events[i]);
      }
    }
    auto warnings = engine.InspectAll(t);
    int threats = 0, drifting = 0;
    for (const auto& w : warnings) {
      threats += w.threat;
      drifting += w.drifting;
    }
    std::printf("t=%5.1fh  homes=%d threats=%d drifting=%d\n", t, homes,
                threats, drifting);
    for (int h = 0; h < homes; ++h) {
      const auto& w = warnings[static_cast<size_t>(h)];
      if (w.threat || w.drifting) {
        std::printf("-- home %d --\n%s\n", h, w.Render().c_str());
      }
    }
  }
  size_t verdict_hits = 0, tensor_hits = 0, inspects = 0;
  for (int h = 0; h < homes; ++h) {
    const auto& s = engine.home(h);
    verdict_hits += s.verdict_hits();
    tensor_hits += s.tensor_hits();
    inspects += s.inspect_count();
  }
  std::printf(
      "cache stats: %zu inspections, %zu verdict hits, %zu tensor hits, "
      "%zu correlation memo hits\n",
      inspects, verdict_hits, tensor_hits,
      detector.detector().correlation_cache().hits());
  return 0;
}

int CmdSimulate(const std::map<std::string, std::string>& flags) {
  const double hours = std::atof(FlagOr(flags, "hours", "24").c_str());
  const std::string attack_name = FlagOr(flags, "attack", "none");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1337").c_str(), nullptr, 10);

  testbed::SmartHome::Config cfg;
  cfg.seed = seed;
  testbed::SmartHome home(cfg, testbed::ScenarioGenerator::BenignDeployment());
  home.Simulate(hours / 2);
  for (int a = 0; a < testbed::kNumAttackTypes; ++a) {
    const auto type = static_cast<testbed::AttackType>(a);
    if (attack_name == testbed::AttackName(type) &&
        type != testbed::AttackType::kNone) {
      Rng rng(seed ^ 0xa77ac);
      testbed::ApplyAttack(type, &home, &rng);
      std::printf("** injected attack: %s **\n", attack_name.c_str());
    }
  }
  home.Simulate(hours / 2);
  for (const auto& line : home.log().Render()) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("-- %zu events over %.1f simulated hours --\n",
              home.log().size(), hours);
  return 0;
}

int CmdAnalyze(const std::map<std::string, std::string>& flags) {
  auto deployed = DemoRules(FlagOr(flags, "demo", "table1"));
  nlp::EmbeddingModel wm(300, 17), sm(512, 18);
  graph::GraphBuilder builder({}, &wm, &sm);
  auto g = builder.BuildFromRules(deployed);
  std::printf("graph: %d nodes, %d edges, vulnerable=%s\n", g.num_nodes(),
              g.num_edges(), g.vulnerable() ? "YES" : "no");
  for (const auto& f : graph::ThreatAnalyzer::DetectClassic(g)) {
    std::printf("  [classic] %-18s rules:", graph::ThreatTypeName(f.type));
    for (int n : f.nodes) {
      std::printf(" #%d", g.nodes()[static_cast<size_t>(n)].rule.id);
    }
    std::printf("\n");
  }
  for (const auto& f : graph::ThreatAnalyzer::DetectNewTypes(g)) {
    std::printf("  [new]     %-18s rules:", graph::ThreatTypeName(f.type));
    for (int n : f.nodes) {
      std::printf(" #%d", g.nodes()[static_cast<size_t>(n)].rule.id);
    }
    std::printf("\n");
  }
  return 0;
}

void Usage() {
  std::printf(
      "glint — interactive-threat detection for smart home rules\n\n"
      "usage: glint <command> [flags]\n\n"
      "commands:\n"
      "  generate-corpus --out FILE [--scale N] [--seed S]\n"
      "  build-dataset   --out FILE [--graphs N] [--platform P] [--seed S]\n"
      "  dataset-info    FILE\n"
      "  train           --model-dir DIR [--graphs N] [--epochs E]\n"
      "  inspect         [--model-dir DIR] [--demo table1|table4|blueprints]\n"
      "  serve           [--model-dir DIR] [--homes N] [--hours H]\n"
      "                  [--inspect-every H] [--seed S]\n"
      "  simulate        [--hours H] [--attack NAME] [--seed S]\n"
      "  analyze         [--demo table1|table4|blueprints]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (cmd == "generate-corpus") return CmdGenerateCorpus(flags);
  if (cmd == "build-dataset") return CmdBuildDataset(flags);
  if (cmd == "dataset-info") {
    if (argc < 3) {
      std::fprintf(stderr, "dataset-info requires a FILE\n");
      return 2;
    }
    return CmdDatasetInfo(argv[2]);
  }
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "simulate") return CmdSimulate(flags);
  if (cmd == "analyze") return CmdAnalyze(flags);
  Usage();
  return 2;
}
