// Regenerates Figure 7: the ITGNN ablation study on the heterogeneous
// dataset — number of scales, pooling ratio, number of propagation layers,
// and the metapath-transformation modules.

#include <cstdio>
#include <ctime>

#include "bench_common.h"

using namespace glint;         // NOLINT
using namespace glint::bench;  // NOLINT
using gnn::GnnGraph;
using gnn::ItgnnModel;

namespace {

std::vector<GnnGraph>* g_graphs = nullptr;

ml::Metrics RunConfig(ItgnnModel::Config cfg, int epochs = 10) {
  Rng rng(70);
  std::vector<GnnGraph> train, test;
  gnn::SplitGraphs(*g_graphs, 0.8, &rng, &train, &test);
  ItgnnModel model(cfg);
  gnn::TrainConfig tc;
  tc.epochs = epochs;
  gnn::Trainer trainer(tc);
  trainer.TrainSupervised(&model, train);
  return gnn::Trainer::Evaluate(&model, test);
}

}  // namespace

int main() {
  Banner("Figure 7: ITGNN ablation study", "Fig. 7");
  auto corpus = DefaultCorpus();
  auto graphs = gnn::ToGnnGraphs(BuildGraphs(corpus, 800, 71));
  g_graphs = &graphs;

  // (i) Number of scales (paper best: 3).
  {
    TablePrinter t({"num scales", "accuracy", "F1"});
    for (int scales : {1, 2, 3, 5}) {
      const std::clock_t t0 = std::clock();
      ItgnnModel::Config cfg;
      cfg.num_scales = scales;
      auto m = RunConfig(cfg);
      t.AddRow({StrFormat("%d", scales), StrFormat("%.3f", m.accuracy),
                StrFormat("%.3f", m.f1)});
      std::printf("  scales=%d done (%.0fs)\n", scales,
                  static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC);
    }
    std::printf("(i) the number of multi-scale (paper: best at 3)\n");
    t.Print();
  }

  // (ii) Pooling ratio (paper best: 0.6; 1.0 disables VIPool).
  {
    TablePrinter t({"pooling ratio", "accuracy", "F1"});
    for (double ratio : {0.3, 0.6, 1.0}) {
      ItgnnModel::Config cfg;
      cfg.pooling_ratio = ratio;
      auto m = RunConfig(cfg);
      t.AddRow({StrFormat("%.1f", ratio), StrFormat("%.3f", m.accuracy),
                StrFormat("%.3f", m.f1)});
    }
    std::printf("(ii) pooling ratio (paper: best at 0.6)\n");
    t.Print();
  }

  // (iii) Number of propagation layers (paper: 2 best, 6 over-smooths).
  {
    TablePrinter t({"propagation layers", "accuracy", "F1"});
    for (int layers : {1, 2, 4, 6}) {
      ItgnnModel::Config cfg;
      cfg.prop_layers = layers;
      auto m = RunConfig(cfg);
      t.AddRow({StrFormat("%d", layers), StrFormat("%.3f", m.accuracy),
                StrFormat("%.3f", m.f1)});
    }
    std::printf("(iii) propagation layers (paper: 2 best; 6 over-smooths)\n");
    t.Print();
  }

  // (iv) Metapath-based node transformation modules
  // (paper: none=81.5%, all=95.1%).
  {
    TablePrinter t({"node transformation", "accuracy", "F1"});
    const struct {
      const char* name;
      bool intra, inter;
    } variants[] = {
        {"None", false, false},
        {"Intra only", true, false},
        {"Inter only", false, true},
        {"ALL", true, true},
    };
    for (const auto& v : variants) {
      ItgnnModel::Config cfg;
      cfg.use_intra = v.intra;
      cfg.use_inter = v.inter;
      auto m = RunConfig(cfg);
      t.AddRow({v.name, StrFormat("%.3f", m.accuracy),
                StrFormat("%.3f", m.f1)});
    }
    std::printf("(iv) metapath modules (paper: None 81.5%% vs ALL 95.1%%)\n");
    t.Print();
  }

  std::printf("paper shape to check: peak near scales=3 / ratio=0.6 /\n"
              "layers=2, and the full metapath transformation beating the\n"
              "ablated variants.\n");
  return 0;
}
