#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"

namespace glint::ml {

/// Common interface for the classic classifiers compared in Fig. 6.
/// Implementations must be deterministic given their constructor seed.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. `class_weights` (one per class, may be empty for
  /// uniform) scale each sample's contribution to the loss.
  virtual void Fit(const Dataset& data,
                   const std::vector<double>& class_weights) = 0;

  /// Predicts the class of a single sample.
  virtual int Predict(const FloatVec& x) const = 0;

  /// Probability of class 1 (binary classifiers; default derives from
  /// Predict).
  virtual double PredictProba(const FloatVec& x) const {
    return Predict(x) == 1 ? 1.0 : 0.0;
  }

  /// Short display name ("SVC", "MLP", ...).
  virtual std::string Name() const = 0;

  /// Convenience batch prediction.
  std::vector<int> PredictBatch(const std::vector<FloatVec>& xs) const {
    std::vector<int> out;
    out.reserve(xs.size());
    for (const auto& x : xs) out.push_back(Predict(x));
    return out;
  }
};

}  // namespace glint::ml
