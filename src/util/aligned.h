#pragma once

#include <cstddef>
#include <new>

namespace glint::util {

/// Minimal std::allocator drop-in that over-aligns every allocation to
/// `Alignment` bytes. Matrix row storage uses this at 64 bytes so the SIMD
/// kernel backends (src/gnn/kernels.h) see cache-line-aligned base pointers
/// — a full AVX-512 lane and an even number of AVX2 lanes per line.
template <typename T, size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "Alignment must not under-align T");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace glint::util
