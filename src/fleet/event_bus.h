#pragma once

// Bounded MPSC ingestion bus decoupling producers (network connection
// handlers, replay drivers) from the fleet's shards — the MqttBus /
// EventGate shape: producers publish home-addressed messages, one
// consumer thread per shard drains its own FIFO queue and applies the
// messages to that shard's ServingEngine.
//
// Threading contract: shard K's engine is touched ONLY by shard K's
// consumer thread while the bus is running (engines are single-writer,
// and ServingEngine has no internal locking). That makes RunOnShard the
// one race-free read path while producers are live: it runs a closure on
// the shard's consumer thread, after everything already queued for that
// shard has been applied. Flush()/FlushShard() are weaker — they wait for
// a momentarily empty queue, so they are a true barrier only once
// producers are quiesced; never read an engine directly after a mere
// Flush while other threads can still Post to its shard.
//
// Backpressure is explicit and configurable:
//   kBlock   Post waits for queue space (lossless; producers slow to the
//            shard's drain rate — the default for durable serving);
//   kReject  Post returns FailedPrecondition immediately and bumps the
//            glint.fleet.bus.rejected counter (lossy; for callers with
//            their own retry/shed policy).
//
// Determinism: a home maps to exactly one shard queue, queues are FIFO,
// and each queue has one consumer — so messages for a given home apply in
// exactly the order they were posted, regardless of producer/shard
// interleaving. A workload whose per-home message order is fixed therefore
// reaches the same fleet state as applying the messages synchronously, and
// inspection after Flush() is bit-identical (tests/fleet_test.cc).
//
// Apply errors (unknown home id, duplicate AddHome, WAL failure) cannot be
// returned to Post's caller — the message was accepted, the failure is
// asynchronous. They are counted (glint.fleet.bus.apply_errors) and the
// first per-shard error is retained for FirstError(); at-most-once apply,
// never a crash.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/sharding.h"

namespace glint::fleet {

/// One home-addressed mutation riding the bus. kTask is the control
/// plane: a closure run on the shard's consumer thread (see RunOnShard).
struct BusMessage {
  enum class Kind : uint8_t { kAddHome, kAddRule, kRemoveRule, kEvent, kTask };
  Kind kind = Kind::kEvent;
  HomeId home;
  std::vector<rules::Rule> rules;  ///< kAddHome: the deployed rule set
  rules::Rule rule;                ///< kAddRule
  int rule_id = 0;                 ///< kRemoveRule
  graph::Event event;              ///< kEvent
  std::function<void()> task;      ///< kTask
};

class EventBus {
 public:
  enum class Backpressure : uint8_t { kBlock, kReject };

  struct Config {
    /// Per-shard queue bound (messages).
    size_t capacity = 1024;
    Backpressure policy = Backpressure::kBlock;
    /// Tests only: do not start consumer threads; callers drain manually
    /// with DrainOnce(). Makes backpressure deterministic to exercise.
    bool manual_drain = false;
  };

  /// The fleet must outlive the bus; the bus owns its consumer threads.
  EventBus(ShardedFleet* fleet, Config config);
  ~EventBus();

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Routes `msg` to its home's shard queue. OK = accepted (not yet
  /// applied); FailedPrecondition = rejected by the kReject policy on a
  /// full queue; FailedPrecondition also once Stop() has begun. An OK
  /// return guarantees the message will be applied before Stop() returns.
  Status Post(BusMessage msg);

  /// Runs `fn` on shard `k`'s consumer thread after every message already
  /// queued for that shard has been applied, and blocks until `fn`
  /// returns. This is the race-free way to read shard `k`'s engine while
  /// producers are live: `fn` and the shard's mutations execute on the
  /// same thread, so no Post can interleave an apply with the read.
  /// Bypasses the capacity bound (control plane; in-flight tasks are
  /// bounded by blocked callers). FailedPrecondition once Stop() has
  /// begun, in which case `fn` is never run. In manual_drain mode, drains
  /// shard `k` then runs `fn` on the calling thread. Must not be called
  /// from a consumer thread (a task scheduling a task would self-wait).
  Status RunOnShard(int k, std::function<void()> fn);

  /// Blocks until every queue is empty and every in-flight message has
  /// been applied. Concurrent Posts during a Flush may or may not be
  /// covered; quiesce producers first for a true barrier (or use
  /// RunOnShard, which needs no quiescing).
  void Flush();
  /// Per-shard flush: drains only shard `k`'s queue. Same caveat as
  /// Flush — a barrier only for quiesced producers.
  void FlushShard(int k);

  /// Stops accepting posts, drains what was accepted, joins consumers.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Manual-drain mode: applies up to `max` queued messages of shard `k`
  /// on the calling thread. Returns messages applied.
  size_t DrainOnce(int k, size_t max = SIZE_MAX);

  /// High-water queue depth of shard `k` since construction.
  size_t queue_high_water(int k) const;
  /// Messages rejected by the kReject policy.
  uint64_t rejected() const;
  /// Messages whose apply returned an error (counted, never thrown).
  uint64_t apply_errors() const;
  /// First apply error of shard `k` (OK when none).
  Status FirstError(int k) const;

 private:
  struct ShardQueue {
    mutable std::mutex mu;
    std::condition_variable can_push;   ///< space available (kBlock)
    std::condition_variable can_pop;    ///< messages available
    std::condition_variable drained;    ///< queue empty + nothing in flight
    std::deque<BusMessage> q;
    size_t high_water = 0;
    bool applying = false;  ///< consumer is between pop and apply-done
    Status first_error;     ///< first apply error, retained
  };

  void ConsumerLoop(int k);
  /// Applies one message to shard `k`'s engine (status = apply outcome).
  Status Apply(int k, const BusMessage& msg);
  void RecordApplyError(int k, const Status& st);

  ShardedFleet* fleet_;
  Config config_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::thread> consumers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> apply_errors_{0};
};

}  // namespace glint::fleet
