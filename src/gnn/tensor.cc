#include "gnn/tensor.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace glint::gnn {

Matrix Matrix::HeInit(int r, int c, Rng* rng) {
  Matrix m(r, c);
  const double scale = std::sqrt(2.0 / std::max(1, r));
  for (auto& x : m.data) x = static_cast<float>(rng->Gaussian(0, scale));
  return m;
}

std::shared_ptr<const SparseMatrix::Csr> SparseMatrix::CsrView() const {
  auto cached = csr_.load(std::memory_order_acquire);
  if (cached) return cached;

  // Counting sort by row; insertion order is preserved within each row so
  // the summation order (and thus the float result) of a row-wise walk
  // matches the entry list exactly.
  auto csr = std::make_shared<Csr>();
  csr->row_ptr.assign(static_cast<size_t>(rows) + 1, 0);
  for (const auto& e : entries) {
    ++csr->row_ptr[static_cast<size_t>(e.r) + 1];
  }
  for (int r = 0; r < rows; ++r) {
    csr->row_ptr[static_cast<size_t>(r) + 1] +=
        csr->row_ptr[static_cast<size_t>(r)];
  }
  csr->col_idx.resize(entries.size());
  csr->vals.resize(entries.size());
  std::vector<int> cursor(csr->row_ptr.begin(), csr->row_ptr.end() - 1);
  for (const auto& e : entries) {
    const int k = cursor[static_cast<size_t>(e.r)]++;
    csr->col_idx[static_cast<size_t>(k)] = e.c;
    csr->vals[static_cast<size_t>(k)] = e.v;
  }

  // First build wins; concurrent builders adopt it (identical contents).
  std::shared_ptr<const Csr> expected;
  std::shared_ptr<const Csr> built = std::move(csr);
  if (csr_.compare_exchange_strong(expected, built)) return built;
  return expected;
}

Tensor* Tape::Constant(Matrix value) {
  auto t = std::make_unique<Tensor>();
  t->value = std::move(value);
  t->requires_grad = track_constants_;
  if (track_constants_) {
    t->grad = Matrix(t->value.rows, t->value.cols);
    tracked_constants_.push_back(t.get());
  }
  nodes_.push_back(std::move(t));
  return nodes_.back().get();
}

Tensor* Tape::Leaf(Parameter* param) {
  auto t = std::make_unique<Tensor>();
  t->value = param->value;
  if (freeze_leaves_) {
    // Inference mode: the parameter enters as a plain constant — no grad
    // buffer, no accumulation closure, and ops downstream only track if
    // some other input (e.g. a tracked constant) does.
    t->requires_grad = false;
    nodes_.push_back(std::move(t));
    return nodes_.back().get();
  }
  t->grad = Matrix(param->value.rows, param->value.cols);
  t->requires_grad = true;
  Tensor* raw = t.get();
  Tape* tape = this;
  t->backward = [raw, param, tape]() {
    Matrix* dst = &param->grad;
    if (tape->grad_sink_ != nullptr) {
      dst = &tape->grad_sink_
                 ->try_emplace(param, param->value.rows, param->value.cols)
                 .first->second;
    }
    for (size_t i = 0; i < raw->grad.data.size(); ++i) {
      dst->data[i] += raw->grad.data[i];
    }
  };
  nodes_.push_back(std::move(t));
  return raw;
}

Tensor* Tape::New(int rows, int cols, bool requires_grad) {
  auto t = std::make_unique<Tensor>();
  t->value = Matrix(rows, cols);
  if (requires_grad) t->grad = Matrix(rows, cols);
  t->requires_grad = requires_grad;
  nodes_.push_back(std::move(t));
  return nodes_.back().get();
}

void Tape::Backward(Tensor* loss) {
  GLINT_CHECK(loss->rows() == 1 && loss->cols() == 1);
  GLINT_CHECK(loss->requires_grad);
  loss->grad.data[0] = 1.f;
  // Creation order is topological; run closures newest-first.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    Tensor* t = it->get();
    if (t->requires_grad && t->backward) t->backward();
  }
}

namespace {

bool Track(std::initializer_list<Tensor*> inputs) {
  for (Tensor* t : inputs) {
    if (t != nullptr && t->requires_grad) return true;
  }
  return false;
}

/// Rows are dispatched to the pool in chunks carrying roughly this many
/// multiply-adds each; smaller products run serially (dispatch overhead
/// would dominate).
constexpr int64_t kParallelFlops = 1 << 15;

/// j-tile width of the transposed-B kernel: one tile of B^T rows stays
/// cache-hot while a chunk of A rows streams through it.
constexpr int kMatMulTile = 64;

int64_t RowGrain(int64_t per_row_flops) {
  return std::max<int64_t>(1,
                           kParallelFlops / std::max<int64_t>(1, per_row_flops));
}

Matrix Transposed(const Matrix& b) {
  Matrix bt(b.cols, b.rows);
  for (int l = 0; l < b.rows; ++l) {
    for (int j = 0; j < b.cols; ++j) bt.At(j, l) = b.At(l, j);
  }
  return bt;
}

}  // namespace

Tensor* MatMul(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->cols() == b->rows());
  Tensor* out = tape->New(a->rows(), b->cols(), Track({a, b}));
  const int n = a->rows(), k = a->cols(), m = b->cols();
  // Transposed-B kernel: C[i][j] = dot(A row i, B^T row j), both contiguous.
  // Each output element is produced by exactly one thread with a fixed
  // l-order, so the result is bit-identical for any thread count.
  const Matrix bt = Transposed(b->value);
  ParallelFor(0, n, RowGrain(static_cast<int64_t>(k) * m),
              [&](int64_t lo, int64_t hi) {
                for (int j0 = 0; j0 < m; j0 += kMatMulTile) {
                  const int j1 = std::min(m, j0 + kMatMulTile);
                  for (int64_t i = lo; i < hi; ++i) {
                    const float* arow =
                        &a->value.data[static_cast<size_t>(i) * k];
                    float* crow = &out->value.data[static_cast<size_t>(i) * m];
                    for (int j = j0; j < j1; ++j) {
                      const float* btrow =
                          &bt.data[static_cast<size_t>(j) * k];
                      float s = 0.f;
                      for (int l = 0; l < k; ++l) s += arow[l] * btrow[l];
                      crow[j] = s;
                    }
                  }
                }
              });
  if (out->requires_grad) {
    out->backward = [a, b, out, n, k, m]() {
      if (a->requires_grad) {
        // dA = dC * B^T, row-parallel over i (B rows are contiguous).
        ParallelFor(0, n, RowGrain(static_cast<int64_t>(k) * m),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        float* garow =
                            &a->grad.data[static_cast<size_t>(i) * k];
                        const float* gcrow =
                            &out->grad.data[static_cast<size_t>(i) * m];
                        for (int l = 0; l < k; ++l) {
                          const float* brow =
                              &b->value.data[static_cast<size_t>(l) * m];
                          float s = 0;
                          for (int j = 0; j < m; ++j) s += gcrow[j] * brow[j];
                          garow[l] += s;
                        }
                      }
                    });
      }
      if (b->requires_grad) {
        // dB = A^T * dC, parallel over B rows: each dB row is owned by one
        // thread and accumulated in ascending-i order (the serial order).
        ParallelFor(0, k, RowGrain(static_cast<int64_t>(n) * m),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t l = lo; l < hi; ++l) {
                        float* gbrow =
                            &b->grad.data[static_cast<size_t>(l) * m];
                        for (int i = 0; i < n; ++i) {
                          const float av =
                              a->value.data[static_cast<size_t>(i) * k +
                                            static_cast<size_t>(l)];
                          if (av == 0.f) continue;
                          const float* gcrow =
                              &out->grad.data[static_cast<size_t>(i) * m];
                          for (int j = 0; j < m; ++j) gbrow[j] += av * gcrow[j];
                        }
                      }
                    });
      }
    };
  }
  return out;
}

Tensor* Add(Tape* tape, Tensor* a, Tensor* b) {
  const bool broadcast = (b->rows() == 1 && a->rows() != 1);
  GLINT_CHECK(a->cols() == b->cols());
  GLINT_CHECK(broadcast || a->rows() == b->rows());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, b}));
  const int cols = a->cols();
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < cols; ++j) {
      out->value.At(i, j) = a->value.At(i, j) +
                            (broadcast ? b->value.At(0, j) : b->value.At(i, j));
    }
  }
  if (out->requires_grad) {
    out->backward = [a, b, out, broadcast, cols]() {
      if (a->requires_grad) {
        for (size_t i = 0; i < a->grad.data.size(); ++i) {
          a->grad.data[i] += out->grad.data[i];
        }
      }
      if (b->requires_grad) {
        if (broadcast) {
          for (int i = 0; i < out->rows(); ++i) {
            for (int j = 0; j < cols; ++j) {
              b->grad.At(0, j) += out->grad.At(i, j);
            }
          }
        } else {
          for (size_t i = 0; i < b->grad.data.size(); ++i) {
            b->grad.data[i] += out->grad.data[i];
          }
        }
      }
    };
  }
  return out;
}

Tensor* Sub(Tape* tape, Tensor* a, Tensor* b) {
  Tensor* nb = Scale(tape, b, -1.f);
  return Add(tape, a, nb);
}

Tensor* Mul(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, b}));
  for (size_t i = 0; i < out->value.data.size(); ++i) {
    out->value.data[i] = a->value.data[i] * b->value.data[i];
  }
  if (out->requires_grad) {
    out->backward = [a, b, out]() {
      if (a->requires_grad) {
        for (size_t i = 0; i < a->grad.data.size(); ++i) {
          a->grad.data[i] += out->grad.data[i] * b->value.data[i];
        }
      }
      if (b->requires_grad) {
        for (size_t i = 0; i < b->grad.data.size(); ++i) {
          b->grad.data[i] += out->grad.data[i] * a->value.data[i];
        }
      }
    };
  }
  return out;
}

Tensor* Scale(Tape* tape, Tensor* a, float s) {
  Tensor* out = tape->New(a->rows(), a->cols(), a->requires_grad);
  for (size_t i = 0; i < out->value.data.size(); ++i) {
    out->value.data[i] = s * a->value.data[i];
  }
  if (out->requires_grad) {
    out->backward = [a, out, s]() {
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        a->grad.data[i] += s * out->grad.data[i];
      }
    };
  }
  return out;
}

namespace {

template <typename F, typename DF>
Tensor* Elementwise(Tape* tape, Tensor* a, F f, DF df) {
  Tensor* out = tape->New(a->rows(), a->cols(), a->requires_grad);
  for (size_t i = 0; i < out->value.data.size(); ++i) {
    out->value.data[i] = f(a->value.data[i]);
  }
  if (out->requires_grad) {
    out->backward = [a, out, df]() {
      for (size_t i = 0; i < a->grad.data.size(); ++i) {
        a->grad.data[i] +=
            out->grad.data[i] * df(a->value.data[i], out->value.data[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor* Relu(Tape* tape, Tensor* a) {
  return Elementwise(
      tape, a, [](float x) { return x > 0 ? x : 0.f; },
      [](float x, float) { return x > 0 ? 1.f : 0.f; });
}

Tensor* Sigmoid(Tape* tape, Tensor* a) {
  return Elementwise(
      tape, a, [](float x) { return 1.f / (1.f + std::exp(-x)); },
      [](float, float y) { return y * (1.f - y); });
}

Tensor* Tanh(Tape* tape, Tensor* a) {
  return Elementwise(
      tape, a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.f - y * y; });
}

Tensor* ConcatCols(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->rows() == b->rows());
  Tensor* out = tape->New(a->rows(), a->cols() + b->cols(), Track({a, b}));
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < a->cols(); ++j) out->value.At(i, j) = a->value.At(i, j);
    for (int j = 0; j < b->cols(); ++j) {
      out->value.At(i, a->cols() + j) = b->value.At(i, j);
    }
  }
  if (out->requires_grad) {
    out->backward = [a, b, out]() {
      for (int i = 0; i < a->rows(); ++i) {
        if (a->requires_grad) {
          for (int j = 0; j < a->cols(); ++j) {
            a->grad.At(i, j) += out->grad.At(i, j);
          }
        }
        if (b->requires_grad) {
          for (int j = 0; j < b->cols(); ++j) {
            b->grad.At(i, j) += out->grad.At(i, a->cols() + j);
          }
        }
      }
    };
  }
  return out;
}

Tensor* ConcatRows(Tape* tape, Tensor* a, Tensor* b) {
  GLINT_CHECK(a->cols() == b->cols());
  Tensor* out = tape->New(a->rows() + b->rows(), a->cols(), Track({a, b}));
  std::copy(a->value.data.begin(), a->value.data.end(),
            out->value.data.begin());
  std::copy(b->value.data.begin(), b->value.data.end(),
            out->value.data.begin() + static_cast<long>(a->value.size()));
  if (out->requires_grad) {
    out->backward = [a, b, out]() {
      if (a->requires_grad) {
        for (size_t i = 0; i < a->grad.data.size(); ++i) {
          a->grad.data[i] += out->grad.data[i];
        }
      }
      if (b->requires_grad) {
        for (size_t i = 0; i < b->grad.data.size(); ++i) {
          b->grad.data[i] += out->grad.data[a->value.size() + i];
        }
      }
    };
  }
  return out;
}

Tensor* MeanRows(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  const float inv = 1.0f / static_cast<float>(std::max(1, a->rows()));
  for (int i = 0; i < a->rows(); ++i) {
    for (int j = 0; j < a->cols(); ++j) {
      out->value.At(0, j) += a->value.At(i, j) * inv;
    }
  }
  if (out->requires_grad) {
    out->backward = [a, out, inv]() {
      for (int i = 0; i < a->rows(); ++i) {
        for (int j = 0; j < a->cols(); ++j) {
          a->grad.At(i, j) += out->grad.At(0, j) * inv;
        }
      }
    };
  }
  return out;
}

Tensor* MaxRows(Tape* tape, Tensor* a) {
  GLINT_CHECK(a->rows() >= 1);
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  std::vector<int> argmax(static_cast<size_t>(a->cols()), 0);
  for (int j = 0; j < a->cols(); ++j) {
    float best = a->value.At(0, j);
    for (int i = 1; i < a->rows(); ++i) {
      if (a->value.At(i, j) > best) {
        best = a->value.At(i, j);
        argmax[static_cast<size_t>(j)] = i;
      }
    }
    out->value.At(0, j) = best;
  }
  if (out->requires_grad) {
    out->backward = [a, out, argmax = std::move(argmax)]() {
      for (int j = 0; j < a->cols(); ++j) {
        a->grad.At(argmax[static_cast<size_t>(j)], j) += out->grad.At(0, j);
      }
    };
  }
  return out;
}

Tensor* GatherRows(Tape* tape, Tensor* a, std::vector<int> idx) {
  Tensor* out =
      tape->New(static_cast<int>(idx.size()), a->cols(), a->requires_grad);
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int j = 0; j < a->cols(); ++j) {
      out->value.At(static_cast<int>(i), j) = a->value.At(idx[i], j);
    }
  }
  if (out->requires_grad) {
    out->backward = [a, out, idx = std::move(idx)]() {
      for (size_t i = 0; i < idx.size(); ++i) {
        for (int j = 0; j < a->cols(); ++j) {
          a->grad.At(idx[i], j) += out->grad.At(static_cast<int>(i), j);
        }
      }
    };
  }
  return out;
}

Tensor* SpMM(Tape* tape, const SparseMatrix& s, Tensor* a) {
  GLINT_CHECK(s.cols == a->rows());
  Tensor* out = tape->New(s.rows, a->cols(), a->requires_grad);
  // Row-wise CSR walk instead of a COO scan: one pass per output row, no
  // re-reading the whole entry list per multiply.
  const auto csr = s.CsrView();
  const int cols = a->cols();
  for (int r = 0; r < s.rows; ++r) {
    float* crow = &out->value.data[static_cast<size_t>(r) * cols];
    const int k0 = csr->row_ptr[static_cast<size_t>(r)];
    const int k1 = csr->row_ptr[static_cast<size_t>(r) + 1];
    for (int k = k0; k < k1; ++k) {
      const float v = csr->vals[static_cast<size_t>(k)];
      const float* arow =
          &a->value
               .data[static_cast<size_t>(csr->col_idx[static_cast<size_t>(k)]) *
                     cols];
      for (int j = 0; j < cols; ++j) crow[j] += v * arow[j];
    }
  }
  if (out->requires_grad) {
    // Share the immutable CSR view with the closure; the SparseMatrix
    // itself may not outlive the tape.
    out->backward = [a, out, csr, rows = s.rows, cols]() {
      for (int r = 0; r < rows; ++r) {
        const float* gcrow = &out->grad.data[static_cast<size_t>(r) * cols];
        const int k0 = csr->row_ptr[static_cast<size_t>(r)];
        const int k1 = csr->row_ptr[static_cast<size_t>(r) + 1];
        for (int k = k0; k < k1; ++k) {
          float* garow =
              &a->grad.data[static_cast<size_t>(
                                csr->col_idx[static_cast<size_t>(k)]) *
                            cols];
          const float v = csr->vals[static_cast<size_t>(k)];
          for (int j = 0; j < cols; ++j) garow[j] += v * gcrow[j];
        }
      }
    };
  }
  return out;
}

Tensor* RowScale(Tape* tape, Tensor* a, Tensor* g) {
  GLINT_CHECK(g->rows() == a->rows() && g->cols() == 1);
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, g}));
  for (int i = 0; i < a->rows(); ++i) {
    const float s = g->value.At(i, 0);
    for (int j = 0; j < a->cols(); ++j) {
      out->value.At(i, j) = s * a->value.At(i, j);
    }
  }
  if (out->requires_grad) {
    out->backward = [a, g, out]() {
      for (int i = 0; i < a->rows(); ++i) {
        const float s = g->value.At(i, 0);
        for (int j = 0; j < a->cols(); ++j) {
          if (a->requires_grad) a->grad.At(i, j) += s * out->grad.At(i, j);
          if (g->requires_grad) {
            g->grad.At(i, 0) += a->value.At(i, j) * out->grad.At(i, j);
          }
        }
      }
    };
  }
  return out;
}

Tensor* SumAll(Tape* tape, Tensor* a) {
  Tensor* out = tape->New(1, 1, a->requires_grad);
  double s = 0;
  for (float v : a->value.data) s += v;
  out->value.data[0] = static_cast<float>(s);
  if (out->requires_grad) {
    out->backward = [a, out]() {
      const float g = out->grad.data[0];
      for (auto& gv : a->grad.data) gv += g;
    };
  }
  return out;
}

std::vector<double> SoftmaxRow(const Tensor* logits) {
  std::vector<double> p(logits->value.data.begin(), logits->value.data.end());
  double mx = p[0];
  for (double v : p) mx = std::max(mx, v);
  double sum = 0;
  for (double& v : p) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : p) v /= sum;
  return p;
}

Tensor* SoftmaxCrossEntropy(Tape* tape, Tensor* logits, int label,
                            float weight) {
  GLINT_CHECK(logits->rows() == 1);
  GLINT_CHECK(label >= 0 && label < logits->cols());
  Tensor* out = tape->New(1, 1, logits->requires_grad);
  std::vector<double> p = SoftmaxRow(logits);
  out->value.data[0] = static_cast<float>(
      -weight * std::log(std::max(1e-12, p[static_cast<size_t>(label)])));
  if (out->requires_grad) {
    out->backward = [logits, out, label, weight, p = std::move(p)]() {
      const float g = out->grad.data[0];
      for (int j = 0; j < logits->cols(); ++j) {
        const float onehot = (j == label) ? 1.f : 0.f;
        logits->grad.At(0, j) +=
            g * weight * (static_cast<float>(p[static_cast<size_t>(j)]) -
                          onehot);
      }
    };
  }
  return out;
}

Tensor* BceWithLogit(Tape* tape, Tensor* logit, int label, float weight) {
  GLINT_CHECK(logit->rows() == 1 && logit->cols() == 1);
  Tensor* out = tape->New(1, 1, logit->requires_grad);
  const double x = logit->value.data[0];
  const double y = label;
  // Numerically stable: max(x,0) - x*y + log(1+exp(-|x|))
  out->value.data[0] = static_cast<float>(
      weight * (std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::fabs(x)))));
  if (out->requires_grad) {
    out->backward = [logit, out, y, weight]() {
      const double x = logit->value.data[0];
      const double p = 1.0 / (1.0 + std::exp(-x));
      logit->grad.data[0] +=
          out->grad.data[0] * static_cast<float>(weight * (p - y));
    };
  }
  return out;
}

Tensor* SquaredDistance(Tape* tape, Tensor* a, Tensor* b) {
  Tensor* d = Sub(tape, a, b);
  Tensor* sq = Mul(tape, d, d);
  return SumAll(tape, sq);
}

Tensor* ContrastiveLoss(Tape* tape, Tensor* za, Tensor* zb, bool same_label,
                        float eps) {
  if (same_label) {
    return SquaredDistance(tape, za, zb);  // ||f(xi) - f(xj)||^2
  }
  // max(0, eps - ||f(xi) - f(xj)||_2)^2, computed with a custom node for
  // the norm to keep gradients exact.
  Tensor* d = Sub(tape, za, zb);
  Tensor* out = tape->New(1, 1, d->requires_grad);
  double norm2 = 0;
  for (float v : d->value.data) norm2 += double(v) * v;
  const double norm = std::sqrt(std::max(1e-12, norm2));
  const double margin = std::max(0.0, eps - norm);
  out->value.data[0] = static_cast<float>(margin * margin);
  if (out->requires_grad) {
    out->backward = [d, out, norm, margin]() {
      if (margin <= 0) return;
      // dL/dd = 2 * margin * (-1) * d / norm
      const float g = out->grad.data[0];
      const float coef = static_cast<float>(-2.0 * margin / norm) * g;
      for (size_t i = 0; i < d->grad.data.size(); ++i) {
        d->grad.data[i] += coef * d->value.data[i];
      }
    };
  }
  return out;
}

Tensor* AddLoss(Tape* tape, Tensor* a, Tensor* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Add(tape, a, b);
}

Tensor* SoftmaxRowOp(Tape* tape, Tensor* a) {
  GLINT_CHECK(a->rows() == 1);
  Tensor* out = tape->New(1, a->cols(), a->requires_grad);
  std::vector<double> p = SoftmaxRow(a);
  for (int j = 0; j < a->cols(); ++j) {
    out->value.At(0, j) = static_cast<float>(p[static_cast<size_t>(j)]);
  }
  if (out->requires_grad) {
    out->backward = [a, out]() {
      // dL/dx_i = p_i * (g_i - sum_j g_j p_j)
      double dot = 0;
      for (int j = 0; j < a->cols(); ++j) {
        dot += double(out->grad.At(0, j)) * out->value.At(0, j);
      }
      for (int j = 0; j < a->cols(); ++j) {
        a->grad.At(0, j) += static_cast<float>(
            out->value.At(0, j) * (out->grad.At(0, j) - dot));
      }
    };
  }
  return out;
}

Tensor* ScaleByEntry(Tape* tape, Tensor* a, Tensor* s, int idx) {
  GLINT_CHECK(s->rows() == 1 && idx >= 0 && idx < s->cols());
  Tensor* out = tape->New(a->rows(), a->cols(), Track({a, s}));
  const float sv = s->value.At(0, idx);
  for (size_t i = 0; i < a->value.data.size(); ++i) {
    out->value.data[i] = sv * a->value.data[i];
  }
  if (out->requires_grad) {
    out->backward = [a, s, out, idx, sv]() {
      if (a->requires_grad) {
        for (size_t i = 0; i < a->grad.data.size(); ++i) {
          a->grad.data[i] += sv * out->grad.data[i];
        }
      }
      if (s->requires_grad) {
        double g = 0;
        for (size_t i = 0; i < a->value.data.size(); ++i) {
          g += double(a->value.data[i]) * out->grad.data[i];
        }
        s->grad.At(0, idx) += static_cast<float>(g);
      }
    };
  }
  return out;
}

void Adam::Step(const std::vector<Parameter*>& parameters) {
  t_ += 1;
  const double bc1 = 1.0 - std::pow(params_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(params_.beta2, static_cast<double>(t_));
  for (Parameter* p : parameters) {
    if (!p->frozen) {
      for (size_t i = 0; i < p->value.data.size(); ++i) {
        const double g =
            p->grad.data[i] + params_.weight_decay * p->value.data[i];
        p->m.data[i] = static_cast<float>(params_.beta1 * p->m.data[i] +
                                          (1 - params_.beta1) * g);
        p->v.data[i] = static_cast<float>(params_.beta2 * p->v.data[i] +
                                          (1 - params_.beta2) * g * g);
        p->value.data[i] -= static_cast<float>(
            params_.lr * (p->m.data[i] / bc1) /
            (std::sqrt(p->v.data[i] / bc2) + params_.eps));
      }
    }
    p->ZeroGrad();
  }
}

}  // namespace glint::gnn
