#include "gnn/model_io.h"

#include <cstdio>

namespace glint::gnn {

namespace {
constexpr uint32_t kMagic = 0x474d444cu;  // "GMDL"
}

Status SaveModel(GraphModel* model, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  auto params = model->Parameters();
  const uint32_t count = static_cast<uint32_t>(params.size());
  std::fwrite(&kMagic, sizeof kMagic, 1, f);
  std::fwrite(&count, sizeof count, 1, f);
  for (Parameter* p : params) {
    const int32_t rows = p->value.rows;
    const int32_t cols = p->value.cols;
    std::fwrite(&rows, sizeof rows, 1, f);
    std::fwrite(&cols, sizeof cols, 1, f);
    std::fwrite(p->value.data.data(), sizeof(float), p->value.data.size(), f);
  }
  std::fclose(f);
  return Status::OK();
}

Status LoadModel(GraphModel* model, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  auto params = model->Parameters();
  uint32_t magic = 0, count = 0;
  if (std::fread(&magic, sizeof magic, 1, f) != 1 || magic != kMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad model file magic: " + path);
  }
  if (std::fread(&count, sizeof count, 1, f) != 1 ||
      count != params.size()) {
    std::fclose(f);
    return Status::InvalidArgument("model architecture mismatch: " + path);
  }
  for (Parameter* p : params) {
    int32_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof rows, 1, f) != 1 ||
        std::fread(&cols, sizeof cols, 1, f) != 1 ||
        rows != p->value.rows || cols != p->value.cols) {
      std::fclose(f);
      return Status::InvalidArgument("parameter shape mismatch: " + path);
    }
    if (std::fread(p->value.data.data(), sizeof(float), p->value.data.size(),
                   f) != p->value.data.size()) {
      std::fclose(f);
      return Status::IOError("truncated model file: " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

size_t ModelBytes(GraphModel* model) {
  size_t bytes = sizeof(uint32_t) * 2;
  for (Parameter* p : model->Parameters()) {
    bytes += sizeof(int32_t) * 2 + sizeof(float) * p->value.size();
  }
  return bytes;
}

}  // namespace glint::gnn
