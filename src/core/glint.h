#pragma once

#include <memory>

#include "core/detector.h"
#include "core/warning.h"
#include "graph/event_log.h"

namespace glint::core {

/// Glint — the end-to-end interactive-threat detection system (Fig. 2).
///
/// Since the serving split, Glint is a thin façade over TrainedDetector
/// (the immutable trained half: embeddings, correlation discoverer,
/// ITGNN-S / ITGNN-C, drift detector) so existing benches, examples, and
/// the CLI keep their one-object view of the system. Long-lived serving
/// should instead share `detector()` across DeploymentSessions (one per
/// home) or a ServingEngine; this façade's Inspect/BuildGraph run the
/// *cold* full-rebuild pipeline on every call.
///
/// Offline (back end): crawl/generate the rule corpus, train the rule
/// correlation discoverer (Sec. 3.2.1), build labeled interaction-graph
/// datasets (Sec. 3.2.2), train ITGNN-S (classification, Eq. 2) and ITGNN-C
/// (contrastive, Eq. 1), and fit the drifting-sample detector (Alg. 3).
///
/// Online (front end): construct the real-time interaction graph from the
/// deployed rules and event logs, run the drift check then the classifier,
/// and emit a warning with explained culprit rules; user feedback graphs
/// fine-tune the model (steps 4-8 in Fig. 2).
class Glint {
 public:
  using Options = TrainedDetector::Options;

  Glint() : Glint(Options()) {}
  explicit Glint(Options options);

  /// Runs the full offline stage. Expensive (trains three models).
  void TrainOffline() { detector_->TrainOffline(); }

  /// True once TrainOffline (or LoadModels) has completed.
  bool ready() const { return detector_->ready(); }

  /// Online stage: inspects a deployment given its event log at time `now`.
  /// Cold path — rebuilds the graph from scratch (uncached predicate).
  ThreatWarning Inspect(const std::vector<rules::Rule>& deployed,
                        const graph::EventLog& log, double now_hours);

  /// Inspects a pre-built interaction graph (initial-setup check).
  ThreatWarning InspectGraph(const graph::InteractionGraph& g);

  /// Step 7-8 of Fig. 2: the user marks graphs (e.g. false alarms or
  /// confirmed drifting threats); the model is fine-tuned on them.
  void FineTune(const std::vector<graph::InteractionGraph>& feedback,
                const std::vector<bool>& is_threat) {
    detector_->FineTune(feedback, is_threat);
  }

  /// Builds the static interaction graph of a rule set using the learned
  /// (or oracle) correlation predicate. Cold path (uncached predicate).
  graph::InteractionGraph BuildGraph(const std::vector<rules::Rule>& deployed);

  /// Serialization of the trained detector.
  Status SaveModels(const std::string& dir) const {
    return detector_->SaveModels(dir);
  }
  Status LoadModels(const std::string& dir) {
    return detector_->LoadModels(dir);
  }

  /// The shared trained half — hand this to DeploymentSession /
  /// ServingEngine for warm incremental serving.
  const TrainedDetector& detector() const { return *detector_; }
  TrainedDetector* mutable_detector() { return detector_.get(); }

  // Accessors for benches and examples.
  gnn::ItgnnModel* classifier() { return detector_->classifier(); }
  gnn::ItgnnModel* contrastive() { return detector_->contrastive(); }
  const gnn::DriftDetector& drift_detector() const {
    return detector_->drift_detector();
  }
  const correlation::CorrelationDiscovery& discovery() const {
    return detector_->discovery();
  }
  graph::GraphBuilder* builder() { return detector_->builder(); }
  const std::vector<rules::Rule>& corpus() const {
    return detector_->corpus();
  }
  const nlp::EmbeddingModel& word_model() const {
    return detector_->word_model();
  }
  const nlp::EmbeddingModel& sentence_model() const {
    return detector_->sentence_model();
  }

 private:
  /// Installs the learned (uncached) edge predicate on the builder when
  /// trained and enabled, preserving the pre-split cold-path behavior.
  void PrepareBuilder();

  std::unique_ptr<TrainedDetector> detector_;
};

}  // namespace glint::core
