// Bit-identity proof for the runtime-dispatched kernel backends
// (gnn/kernels.h): every primitive must produce the same bits under the
// scalar reference table and every SIMD table available on this host, for
// shapes that exercise full vector bodies, scalar tails, and sub-vector
// inputs. Fingerprints are compared as hex floats so a mismatch names the
// exact lane. Also covers the dispatch surface (GLINT_KERNEL is decided at
// first use; SetBackend is the test hook) and op-level identity through
// MatMul / softmax, plus the batched segment ops against their sequential
// twins.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gnn/kernels.h"
#include "gnn/tensor.h"
#include "util/rng.h"

namespace glint::gnn {
namespace {

using kernels::AvailableBackends;
using kernels::Backend;
using kernels::CurrentBackend;
using kernels::KernelBackend;
using kernels::kScalarBackend;
using kernels::SetBackend;

// Sizes chosen to hit: sub-lane (1..7), exact lane multiples (8, 16, 64),
// one-past (9, 17), odd tails (15, 31, 33, 100, 257).
const int kSizes[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 257};

std::vector<float> RandomFloats(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(static_cast<size_t>(n));
  for (auto& v : out) {
    v = static_cast<float>(rng.Uniform() * 4.0 - 2.0);
    if (rng.Chance(0.05)) v = 0.f;       // exercise the Axpy skip / Relu edge
    if (rng.Chance(0.05)) v = -v;        // sign mix
  }
  return out;
}

std::string HexFloat(float v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6a", static_cast<double>(v));
  return buf;
}

std::string HexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.13a", v);
  return buf;
}

/// Hex fingerprint of a float buffer: mismatches point at the exact entry.
std::string Fingerprint(const std::vector<float>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    out += HexFloat(v[i]);
    out += (i + 1 < v.size()) ? " " : "";
  }
  return out;
}

const KernelBackend& Table(Backend b) {
  EXPECT_TRUE(SetBackend(b));
  return kernels::Kernels();
}

std::vector<Backend> SimdBackends() {
  std::vector<Backend> out;
  for (Backend b : AvailableBackends()) {
    if (b != Backend::kScalar) out.push_back(b);
  }
  return out;
}

class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    // Leave the process on its most capable backend (listed last).
    SetBackend(AvailableBackends().back());
  }
};

TEST_F(KernelDispatchTest, DispatchSurface) {
  const auto avail = AvailableBackends();
  ASSERT_FALSE(avail.empty());
  // Scalar is always available and listed first (reference table).
  EXPECT_EQ(avail.front(), Backend::kScalar);
  for (Backend b : avail) {
    EXPECT_TRUE(SetBackend(b));
    EXPECT_EQ(CurrentBackend(), b);
    EXPECT_EQ(kernels::Kernels().code, static_cast<int>(b));
    EXPECT_STREQ(kernels::BackendName(), kernels::Kernels().name);
  }
#if !defined(__aarch64__)
  EXPECT_FALSE(SetBackend(Backend::kNeon));
#endif
}

TEST_F(KernelDispatchTest, DotBitIdentity) {
  for (Backend simd : SimdBackends()) {
    for (int n : kSizes) {
      const auto a = RandomFloats(n, 0x10 + static_cast<uint64_t>(n));
      const auto b = RandomFloats(n, 0x90 + static_cast<uint64_t>(n));
      const float want = kScalarBackend.Dot(a.data(), b.data(), n);
      const float got = Table(simd).Dot(a.data(), b.data(), n);
      ASSERT_EQ(HexFloat(want), HexFloat(got))
          << "Dot n=" << n << " backend=" << static_cast<int>(simd);
    }
  }
}

TEST_F(KernelDispatchTest, ElementwiseBitIdentity) {
  for (Backend simd : SimdBackends()) {
    const KernelBackend& kb = Table(simd);
    for (int n : kSizes) {
      const auto x = RandomFloats(n, 0x200 + static_cast<uint64_t>(n));
      const auto y0 = RandomFloats(n, 0x300 + static_cast<uint64_t>(n));
      const auto z = RandomFloats(n, 0x400 + static_cast<uint64_t>(n));
      const float alpha = 0.37f;

      auto ys = y0, yv = y0;
      kScalarBackend.Axpy(ys.data(), alpha, x.data(), n);
      kb.Axpy(yv.data(), alpha, x.data(), n);
      ASSERT_EQ(Fingerprint(ys), Fingerprint(yv)) << "Axpy n=" << n;

      ys = y0, yv = y0;
      kScalarBackend.AddInto(ys.data(), x.data(), n);
      kb.AddInto(yv.data(), x.data(), n);
      ASSERT_EQ(Fingerprint(ys), Fingerprint(yv)) << "AddInto n=" << n;

      ys = y0, yv = y0;
      kScalarBackend.MulAddInto(ys.data(), x.data(), z.data(), n);
      kb.MulAddInto(yv.data(), x.data(), z.data(), n);
      ASSERT_EQ(Fingerprint(ys), Fingerprint(yv)) << "MulAddInto n=" << n;

      std::vector<float> os(static_cast<size_t>(n)), ov(os);
      kScalarBackend.MulInto(os.data(), x.data(), z.data(), n);
      kb.MulInto(ov.data(), x.data(), z.data(), n);
      ASSERT_EQ(Fingerprint(os), Fingerprint(ov)) << "MulInto n=" << n;

      kScalarBackend.ScaleInto(os.data(), alpha, x.data(), n);
      kb.ScaleInto(ov.data(), alpha, x.data(), n);
      ASSERT_EQ(Fingerprint(os), Fingerprint(ov)) << "ScaleInto n=" << n;

      kScalarBackend.ReluInto(os.data(), x.data(), n);
      kb.ReluInto(ov.data(), x.data(), n);
      ASSERT_EQ(Fingerprint(os), Fingerprint(ov)) << "ReluInto n=" << n;
      // ReLU(-0) must be +0 in every backend (the cmp-and-mask rule).
      const float neg_zero = -0.f;
      float r = 1.f;
      kb.ReluInto(&r, &neg_zero, 1);
      EXPECT_EQ(std::memcmp(&r, "\0\0\0\0", 4), 0) << "ReLU(-0) kept the sign";
    }
  }
}

TEST_F(KernelDispatchTest, DoubleKernelsBitIdentity) {
  for (Backend simd : SimdBackends()) {
    const KernelBackend& kb = Table(simd);
    for (int n : kSizes) {
      Rng rng(0x500 + static_cast<uint64_t>(n));
      std::vector<double> x(static_cast<size_t>(n));
      for (auto& v : x) v = rng.Uniform() * 3.0 - 1.0;
      const double want = kScalarBackend.SumDouble(x.data(), n);
      const double got = kb.SumDouble(x.data(), n);
      ASSERT_EQ(HexDouble(want), HexDouble(got)) << "SumDouble n=" << n;

      auto xs = x, xv = x;
      kScalarBackend.DivDouble(xs.data(), want, n);
      kb.DivDouble(xv.data(), want, n);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(HexDouble(xs[static_cast<size_t>(i)]),
                  HexDouble(xv[static_cast<size_t>(i)]))
            << "DivDouble n=" << n << " i=" << i;
      }
    }
  }
}

/// Op-level identity: a MatMul + softmax pipeline through the tape must
/// produce the same bits on every backend (this is what the serving
/// equivalence gate builds on).
TEST_F(KernelDispatchTest, TapeOpsBitIdentical) {
  const int shapes[][3] = {{1, 5, 3}, {7, 13, 9}, {16, 64, 32}, {33, 17, 2}};
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    Rng rng(static_cast<uint64_t>(n * 1000 + k));
    Matrix a(n, k), b(k, m);
    for (auto& v : a.data) v = static_cast<float>(rng.Uniform() - 0.5);
    for (auto& v : b.data) v = static_cast<float>(rng.Uniform() - 0.5);

    auto run = [&](Backend backend) {
      EXPECT_TRUE(SetBackend(backend));
      ScopedTape tape;
      Tensor* c = Relu(tape.get(), MatMul(tape.get(), tape->Constant(a),
                                          tape->Constant(b)));
      std::string fp;
      for (int i = 0; i < c->rows(); ++i) {
        std::vector<double> p(static_cast<size_t>(m));
        SoftmaxRowInto(c->value.data.data() + static_cast<size_t>(i) * m, m,
                       p.data());
        for (double v : p) fp += HexDouble(v) + " ";
      }
      for (float v : c->value.data) fp += HexFloat(v) + " ";
      return fp;
    };

    const std::string scalar_fp = run(Backend::kScalar);
    for (Backend simd : SimdBackends()) {
      ASSERT_EQ(scalar_fp, run(simd))
          << "MatMul+Relu+softmax " << n << "x" << k << "x" << m;
    }
  }
}

/// The segment ops must match their whole-matrix twins applied per block —
/// the core lemma behind batched == sequential serving.
TEST_F(KernelDispatchTest, SegmentOpsMatchSequentialTwins) {
  const std::vector<int> offsets = {0, 1, 4, 9, 16};
  const int cols = 11;
  Rng rng(0xbeef);
  Matrix a(offsets.back(), cols);
  for (auto& v : a.data) v = static_cast<float>(rng.Uniform() * 2 - 1);

  for (Backend backend : AvailableBackends()) {
    ASSERT_TRUE(SetBackend(backend));
    ScopedTape tape;
    Tensor* full = tape->Constant(a);
    Tensor* mean = SegmentMeanRows(tape.get(), full, offsets);
    Tensor* max = SegmentMaxRows(tape.get(), full, offsets);
    Tensor* sm = SoftmaxRows(tape.get(), mean);
    for (size_t s = 0; s + 1 < offsets.size(); ++s) {
      Matrix block(offsets[s + 1] - offsets[s], cols);
      for (int i = 0; i < block.rows; ++i) {
        for (int j = 0; j < cols; ++j) {
          block.At(i, j) = a.At(offsets[s] + i, j);
        }
      }
      Tensor* bt = tape->Constant(block);
      Tensor* bmean = MeanRows(tape.get(), bt);
      Tensor* bmax = MaxRows(tape.get(), bt);
      Tensor* bsm = SoftmaxRowOp(tape.get(), bmean);
      for (int j = 0; j < cols; ++j) {
        ASSERT_EQ(HexFloat(bmean->value.At(0, j)),
                  HexFloat(mean->value.At(static_cast<int>(s), j)))
            << "SegmentMeanRows seg=" << s << " col=" << j;
        ASSERT_EQ(HexFloat(bmax->value.At(0, j)),
                  HexFloat(max->value.At(static_cast<int>(s), j)))
            << "SegmentMaxRows seg=" << s << " col=" << j;
        ASSERT_EQ(HexFloat(bsm->value.At(0, j)),
                  HexFloat(sm->value.At(static_cast<int>(s), j)))
            << "SoftmaxRows seg=" << s << " col=" << j;
      }
    }
  }
}

}  // namespace
}  // namespace glint::gnn
