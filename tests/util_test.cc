#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/binio.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/vecmath.h"

namespace glint {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Crc32c;
using util::Crc32cExtend;

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedingRestartsStream) {
  Rng a(42);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Seed(42);
  EXPECT_EQ(first, a.NextU64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Weighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedApproximatesProportions) {
  Rng rng(29);
  int counts[2] = {0, 0};
  const int n = 10000;
  for (int i = 0; i < n; ++i) counts[rng.Weighted({1.0, 3.0})]++;
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not equal the parent continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += a.NextU64() == child.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(HashStringTest, StableAndDistinct) {
  const uint64_t h1 = HashString("window", 6);
  EXPECT_EQ(h1, HashString("window", 6));
  EXPECT_NE(h1, HashString("door", 4));
  EXPECT_NE(HashString("ab", 2), HashString("ba", 2));
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: disk full");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// Result<T> stores the value and the error in a union, so an error-holding
// Result must never construct a T. This type has no default constructor and
// counts live instances to prove it.
struct Tracked {
  static int live;
  explicit Tracked(int v) : value(v) { ++live; }
  Tracked(const Tracked& o) : value(o.value) { ++live; }
  Tracked(Tracked&& o) noexcept : value(o.value) { ++live; }
  ~Tracked() { --live; }
  int value;
};
int Tracked::live = 0;

TEST(ResultTest, ErrorNeverConstructsNonDefaultConstructibleValue) {
  {
    Result<Tracked> err(Status::IOError("disk on fire"));
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_EQ(err.status().code(), StatusCode::kIOError);

    Result<Tracked> ok(Tracked(7));
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().value, 7);
    EXPECT_EQ(Tracked::live, 1);

    // Copy / move / cross-state assignment keep exactly one T alive per
    // value-holding Result and destroy the right union member.
    Result<Tracked> copy = ok;
    EXPECT_EQ(Tracked::live, 2);
    err = std::move(copy);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().value, 7);
    ok = Result<Tracked>(Status::NotFound("gone"));
    EXPECT_FALSE(ok.ok());
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(ResultTest, StatusOfValueIsOk) {
  Result<int> r(3);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(std::move(r).ValueOrDie(), 3);
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli) — known-answer vectors + streaming equivalence
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("a", 1), 0xC1D04330u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const char data[] = "write-ahead logs need checksums";
  const size_t n = sizeof(data) - 1;
  const uint32_t whole = Crc32c(data, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t crc = Crc32cExtend(0, data, split);
    crc = Crc32cExtend(crc, data + split, n - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string buf = "0123456789abcdef0123456789abcdef";
  const uint32_t good = Crc32c(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] ^= 0x10;
    EXPECT_NE(Crc32c(buf.data(), buf.size()), good) << "flip at " << i;
    buf[i] ^= 0x10;
  }
}

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader round trip
// ---------------------------------------------------------------------------

TEST(BinioTest, RoundTripsEveryFieldType) {
  ByteWriter w;
  w.U8(7);
  w.U32(0xdeadbeefu);
  w.U64(1ull << 60);
  w.I32(-12345);
  w.F32(1.5f);
  w.F64(-2.25);
  w.Str("snapshot");
  ByteReader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string s;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I32(&i32));
  EXPECT_TRUE(r.F32(&f32));
  EXPECT_TRUE(r.F64(&f64));
  EXPECT_TRUE(r.Str(&s));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(s, "snapshot");
}

TEST(BinioTest, TruncationReturnsFalseNotCrash) {
  ByteWriter w;
  w.U32(4);
  ByteReader r(w.buffer());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.U64(&u64));  // only 4 bytes available
  std::string s;
  ByteWriter w2;
  w2.U32(100);  // claims a 100-byte string with no bytes behind it
  ByteReader r2(w2.buffer());
  EXPECT_FALSE(r2.Str(&s));
}

// ---------------------------------------------------------------------------
// String utils
// ---------------------------------------------------------------------------

TEST(StringUtils, ToLower) {
  EXPECT_EQ(ToLower("Turn ON the AC"), "turn on the ac");
}

TEST(StringUtils, SplitDropsEmptyPieces) {
  auto parts = Split("a,,b,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtils, SplitWhitespaceHandlesTabsNewlines) {
  auto parts = SplitWhitespace(" a\tb\nc ");
  ASSERT_EQ(parts.size(), 3u);
}

TEST(StringUtils, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtils, Strip) {
  EXPECT_EQ(Strip("  hello \n"), "hello");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("blueprint: x", "blueprint"));
  EXPECT_FALSE(StartsWith("x", "blueprint"));
  EXPECT_TRUE(EndsWith("running", "ing"));
  EXPECT_FALSE(EndsWith("run", "ing"));
}

TEST(StringUtils, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.1f", 3, "x", 2.25), "3-x-2.2");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"model", "acc"});
  t.AddRow({"GCN", "89.5"});
  t.AddRow({"ITGNN-S", "95.7"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| model   |"), std::string::npos);
  EXPECT_NE(s.find("| ITGNN-S |"), std::string::npos);
}

TEST(TablePrinterTest, NumericRow) {
  TablePrinter t({"model", "a", "b"});
  t.AddRow("x", {1.234, 5.0}, 2);
  EXPECT_NE(t.ToString().find("1.23"), std::string::npos);
}

// ---------------------------------------------------------------------------
// vecmath
// ---------------------------------------------------------------------------

TEST(VecMath, DotAndNorm) {
  FloatVec a{3, 4};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
}

TEST(VecMath, CosineSimilarityBounds) {
  FloatVec a{1, 0}, b{0, 1}, c{2, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, FloatVec{-1, 0}), -1.0, 1e-9);
}

TEST(VecMath, CosineOfZeroVectorIsZero) {
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(VecMath, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

TEST(VecMath, MeanOfVectors) {
  auto m = Mean({{1, 2}, {3, 4}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_FLOAT_EQ(m[0], 2.0f);
  EXPECT_FLOAT_EQ(m[1], 3.0f);
  EXPECT_TRUE(Mean({}).empty());
}

TEST(VecMath, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

}  // namespace
}  // namespace glint
