#include "ml/kmeans.h"

#include <limits>

#include "util/status.h"

namespace glint::ml {

void KMeans::Fit(const std::vector<FloatVec>& xs) {
  GLINT_CHECK(!xs.empty());
  GLINT_CHECK(params_.k > 0);
  Rng rng(params_.seed);
  const size_t k = std::min<size_t>(static_cast<size_t>(params_.k), xs.size());

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(xs[rng.Below(xs.size())]);
  std::vector<double> d2(xs.size());
  while (centroids_.size() < k) {
    double total = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids_) {
        const double d = EuclideanDistance(xs[i], c);
        best = std::min(best, d * d);
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0) {
      centroids_.push_back(xs[rng.Below(xs.size())]);
      continue;
    }
    double r = rng.Uniform() * total;
    size_t pick = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      r -= d2[i];
      if (r <= 0) {
        pick = i;
        break;
      }
    }
    centroids_.push_back(xs[pick]);
  }

  labels_.assign(xs.size(), 0);
  for (int iter = 0; iter < params_.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < xs.size(); ++i) {
      const int a = Assign(xs[i]);
      if (a != labels_[i]) {
        labels_[i] = a;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<FloatVec> sums(centroids_.size(),
                               FloatVec(xs[0].size(), 0.f));
    std::vector<int> counts(centroids_.size(), 0);
    for (size_t i = 0; i < xs.size(); ++i) {
      AddInPlace(&sums[static_cast<size_t>(labels_[i])], xs[i]);
      counts[static_cast<size_t>(labels_[i])] += 1;
    }
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] > 0) {
        ScaleInPlace(&sums[c], 1.0f / static_cast<float>(counts[c]));
        centroids_[c] = sums[c];
      }
    }
    if (!changed) break;
  }
}

int KMeans::Assign(const FloatVec& x) const {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = EuclideanDistance(x, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double KMeans::Inertia(const std::vector<FloatVec>& xs) const {
  double total = 0;
  for (const auto& x : xs) {
    const double d = EuclideanDistance(x, centroids_[static_cast<size_t>(Assign(x))]);
    total += d * d;
  }
  return total;
}

}  // namespace glint::ml
